//! [`JobSpec`]: one builder for a Do-All job, runnable on either plane —
//! directly ([`JobSpec::run`] / [`JobSpec::run_async`]) or submitted to a
//! [`Session`](crate::Session) as a boxed [`Job`]. Both paths funnel
//! through the same private execution routines, which is what makes a job
//! served through the pool bit-identical to a direct engine run.

use std::fmt;
use std::num::NonZeroUsize;

use doall_sim::asynch::{
    run_async, AsyncAdversary, AsyncConfig, AsyncProtocol, AsyncReport, AsyncRunError, DelayDist,
};
use doall_sim::{run, Adversary, FaultKind, Metrics, Protocol, Report, Round, RunConfig, RunError};
use doall_workload::Scenario;

/// A complete description of one Do-All job: the per-process protocol
/// state machines, the failure [`Scenario`], and the engine limits of
/// both planes. Terminal calls pick the plane:
///
/// * [`run`](JobSpec::run) / [`run_with`](JobSpec::run_with) — the
///   synchronous round engine (PR 9 sharded stepping intact via
///   [`shards`](JobSpec::shards) or `DOALL_ENGINE_SHARDS`);
/// * [`run_async`](JobSpec::run_async) /
///   [`run_async_with`](JobSpec::run_async_with) — the event-driven
///   engine, honouring the [`seed`](JobSpec::seed) and
///   [`delay`](JobSpec::delay) knobs;
/// * [`into_job`](JobSpec::into_job) /
///   [`into_async_job`](JobSpec::into_async_job) — a boxed [`Job`] for a
///   [`Session`](crate::Session)'s shared pool.
///
/// Scenarios whose [`FaultPlan`](doall_sim::FaultPlan) carries `Slow*`
/// faults are wrapped automatically
/// ([`FaultPlan::wrap`](doall_sim::FaultPlan::wrap) /
/// [`wrap_async`](doall_sim::FaultPlan::wrap_async)), so a
/// [`Scenario::Slowdown`] job needs no manual wrapping.
///
/// # Examples
///
/// ```
/// use doall_core::ProtocolB;
/// use doall_service::JobSpec;
/// use doall_workload::Scenario;
///
/// let report = JobSpec::new(ProtocolB::processes(64, 16)?, 64)
///     .scenario(Scenario::Random { seed: 7, p: 0.02, max_crashes: 15 })
///     .run()?;
/// assert!(report.metrics.all_work_done());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct JobSpec<P> {
    procs: Vec<P>,
    n: usize,
    scenario: Scenario,
    max_rounds: Round,
    record_trace: bool,
    stall_window: Option<u64>,
    shards: Option<NonZeroUsize>,
    seed: u64,
    delay: Option<(DelayDist, u64)>,
    max_events: Option<u64>,
    deadline: Option<u128>,
    label: String,
}

impl<P> JobSpec<P> {
    /// A failure-free job over `procs` performing `n` units, with the
    /// engine defaults of both planes (shards still follow
    /// `DOALL_ENGINE_SHARDS`, like [`RunConfig::new`]).
    pub fn new(procs: Vec<P>, n: usize) -> Self {
        JobSpec {
            procs,
            n,
            scenario: Scenario::FailureFree,
            max_rounds: Round::MAX,
            record_trace: false,
            stall_window: None,
            shards: None,
            seed: 0,
            delay: None,
            max_events: None,
            deadline: None,
            label: "job".into(),
        }
    }

    /// Sets the failure scenario (default: [`Scenario::FailureFree`]).
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Caps the round count (sync) — exceeding it is a
    /// [`RunError::RoundLimit`]. Default: [`Round::MAX`].
    pub fn max_rounds(mut self, max_rounds: impl Into<Round>) -> Self {
        self.max_rounds = max_rounds.into();
        self
    }

    /// Enables trace recording on either plane.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Arms the stall / livelock watchdog of either plane.
    pub fn stall_window(mut self, window: u64) -> Self {
        self.stall_window = Some(window);
        self
    }

    /// Forces the sync engine's shard count (overrides
    /// `DOALL_ENGINE_SHARDS`; `1` = sequential).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = NonZeroUsize::new(shards.max(1));
        self
    }

    /// Seeds the async plane's delay randomness (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the async plane's delay distribution and bound.
    pub fn delay(mut self, dist: DelayDist, max_delay: u64) -> Self {
        self.delay = Some((dist, max_delay));
        self
    }

    /// Caps the async plane's handler invocations.
    pub fn max_events(mut self, max_events: u64) -> Self {
        self.max_events = Some(max_events);
        self
    }

    /// Declares a completion deadline in virtual time **from submission**,
    /// checked by the [`Session`](crate::Session) (queueing delay counts
    /// against it); a miss is recorded, never pre-rejected. Direct runs
    /// ignore it.
    pub fn deadline(mut self, deadline: u128) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Names the job in fleet records (default `"job"`).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The job's system size `t` — the pool slots it occupies.
    pub fn t(&self) -> usize {
        self.procs.len()
    }

    /// The sync-plane [`RunConfig`] this spec compiles to.
    fn run_config(&self) -> RunConfig {
        // Start from `RunConfig::new` so the `DOALL_ENGINE_SHARDS` default
        // applies exactly as it does for direct engine users; an explicit
        // `shards()` call wins over the environment.
        let mut cfg = RunConfig::new(self.n, self.max_rounds);
        cfg.record_trace = self.record_trace;
        cfg.stall_window = self.stall_window;
        if self.shards.is_some() {
            cfg.shards = self.shards;
        }
        cfg
    }

    /// The async-plane [`AsyncConfig`] this spec compiles to.
    fn async_config(&self) -> AsyncConfig {
        let mut cfg = AsyncConfig::new(self.n, self.seed);
        if let Some((dist, max_delay)) = self.delay {
            cfg = cfg.with_delay(dist, max_delay);
        }
        cfg.record_trace = self.record_trace;
        cfg.stall_window = self.stall_window;
        if let Some(max_events) = self.max_events {
            cfg.max_events = max_events;
        }
        cfg
    }
}

/// Whether the scenario's plan needs the `Degraded` wrappers.
fn plan_has_slow(scenario: &Scenario) -> bool {
    scenario
        .fault_plan()
        .faults()
        .iter()
        .any(|f| matches!(f.kind, FaultKind::Slow { .. } | FaultKind::SlowQuarter(_)))
}

/// The single synchronous execution routine behind both [`JobSpec::run`]
/// and the service loop — bit-identity by construction.
fn execute_sync<P>(procs: Vec<P>, scenario: &Scenario, cfg: RunConfig) -> Result<Report, RunError>
where
    P: Protocol + Send,
    P::Msg: Send + Sync + 'static,
{
    if plan_has_slow(scenario) {
        run(scenario.fault_plan().wrap(procs), scenario.adversary::<P::Msg>(), cfg)
    } else {
        run(procs, scenario.adversary::<P::Msg>(), cfg)
    }
}

/// The single asynchronous execution routine behind both
/// [`JobSpec::run_async`] and the service loop.
fn execute_async<P>(
    procs: Vec<P>,
    scenario: &Scenario,
    cfg: AsyncConfig,
) -> Result<AsyncReport, AsyncRunError>
where
    P: AsyncProtocol,
    P::Msg: 'static,
{
    if plan_has_slow(scenario) {
        run_async(
            scenario.fault_plan().wrap_async(procs),
            scenario.async_adversary::<P::Msg>(),
            cfg,
        )
    } else {
        run_async(procs, scenario.async_adversary::<P::Msg>(), cfg)
    }
}

impl<P> JobSpec<P>
where
    P: Protocol + Send + 'static,
    P::Msg: Send + Sync + 'static,
{
    /// Runs the job on the **synchronous** round engine.
    ///
    /// # Errors
    ///
    /// Propagates the engine's [`RunError`] (round limit, stall, invalid
    /// adversary).
    pub fn run(self) -> Result<Report, RunError> {
        let cfg = self.run_config();
        execute_sync(self.procs, &self.scenario, cfg)
    }

    /// Runs on the synchronous engine under a **custom adversary**,
    /// ignoring the spec's scenario — the escape hatch for adversaries
    /// with no [`Scenario`] name.
    ///
    /// # Errors
    ///
    /// Propagates the engine's [`RunError`].
    pub fn run_with<A>(self, adversary: A) -> Result<Report, RunError>
    where
        A: Adversary<P::Msg>,
    {
        let cfg = self.run_config();
        run(self.procs, adversary, cfg)
    }

    /// Boxes this spec as a synchronous-plane [`Job`] for a
    /// [`Session`](crate::Session).
    pub fn into_job(self) -> Job {
        let (label, slots, deadline) = (self.label.clone(), self.t(), self.deadline);
        let cfg = self.run_config();
        let (procs, scenario) = (self.procs, self.scenario);
        Job {
            label,
            slots,
            deadline,
            thunk: Box::new(move || {
                execute_sync(procs, &scenario, cfg).map(JobReport::Sync).map_err(JobError::Sync)
            }),
        }
    }
}

impl<P> JobSpec<P>
where
    P: AsyncProtocol + Send + 'static,
    P::Msg: 'static,
{
    /// Runs the job on the **asynchronous** event-driven engine.
    ///
    /// # Errors
    ///
    /// Propagates the engine's [`AsyncRunError`].
    pub fn run_async(self) -> Result<AsyncReport, AsyncRunError> {
        let cfg = self.async_config();
        execute_async(self.procs, &self.scenario, cfg)
    }

    /// Runs on the asynchronous engine under a custom
    /// [`AsyncAdversary`], ignoring the spec's scenario.
    ///
    /// # Errors
    ///
    /// Propagates the engine's [`AsyncRunError`].
    pub fn run_async_with<A>(self, adversary: A) -> Result<AsyncReport, AsyncRunError>
    where
        A: AsyncAdversary<P::Msg>,
    {
        let cfg = self.async_config();
        run_async(self.procs, adversary, cfg)
    }

    /// Boxes this spec as an asynchronous-plane [`Job`] for a
    /// [`Session`](crate::Session).
    pub fn into_async_job(self) -> Job {
        let (label, slots, deadline) = (self.label.clone(), self.t(), self.deadline);
        let cfg = self.async_config();
        let (procs, scenario) = (self.procs, self.scenario);
        Job {
            label,
            slots,
            deadline,
            thunk: Box::new(move || {
                execute_async(procs, &scenario, cfg).map(JobReport::Async).map_err(JobError::Async)
            }),
        }
    }
}

/// A plane-erased, ready-to-run job: what a [`Session`](crate::Session)
/// queues and executes. Built by [`JobSpec::into_job`] /
/// [`JobSpec::into_async_job`].
pub struct Job {
    pub(crate) label: String,
    pub(crate) slots: usize,
    pub(crate) deadline: Option<u128>,
    pub(crate) thunk: Box<dyn FnOnce() -> Result<JobReport, JobError> + Send>,
}

impl Job {
    /// The job's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Pool slots the job occupies while running (its system size `t`).
    pub fn slots(&self) -> usize {
        self.slots
    }
}

impl fmt::Debug for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Job")
            .field("label", &self.label)
            .field("slots", &self.slots)
            .field("deadline", &self.deadline)
            .finish_non_exhaustive()
    }
}

/// The outcome of one job run, from either plane.
#[derive(Clone, Debug, PartialEq)]
pub enum JobReport {
    /// A synchronous-engine [`Report`].
    Sync(Report),
    /// An asynchronous-engine [`AsyncReport`].
    Async(AsyncReport),
}

impl JobReport {
    /// The engine metrics (the async `rounds` field holds the final
    /// timestamp).
    pub fn metrics(&self) -> &Metrics {
        match self {
            JobReport::Sync(r) => &r.metrics,
            JobReport::Async(r) => &r.metrics,
        }
    }

    /// The job's service time in virtual rounds / time units.
    pub fn rounds(&self) -> u128 {
        self.metrics().rounds.get()
    }

    /// The synchronous report, if this job ran on the round engine.
    pub fn as_sync(&self) -> Option<&Report> {
        match self {
            JobReport::Sync(r) => Some(r),
            JobReport::Async(_) => None,
        }
    }

    /// The asynchronous report, if this job ran on the event engine.
    pub fn as_async(&self) -> Option<&AsyncReport> {
        match self {
            JobReport::Sync(_) => None,
            JobReport::Async(r) => Some(r),
        }
    }
}

/// An engine error from either plane, surfaced in a
/// [`JobRecord`](crate::JobRecord).
#[derive(Debug)]
pub enum JobError {
    /// The synchronous engine failed.
    Sync(RunError),
    /// The asynchronous engine failed.
    Async(AsyncRunError),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Sync(e) => write!(f, "sync engine: {e}"),
            JobError::Async(e) => write!(f, "async engine: {e}"),
        }
    }
}

impl std::error::Error for JobError {}

#[cfg(test)]
mod tests {
    use super::*;
    use doall_sim::{Classify, Effects, Inbox, Unit};

    struct OneUnit(usize);

    #[derive(Clone, Debug)]
    struct NoMsg;
    impl Classify for NoMsg {}

    impl Protocol for OneUnit {
        type Msg = NoMsg;
        fn step(&mut self, _: Round, _: Inbox<'_, NoMsg>, eff: &mut Effects<NoMsg>) {
            eff.perform(Unit::new(self.0 + 1));
            eff.terminate();
        }
        fn next_wakeup(&self, now: Round) -> Option<Round> {
            Some(now)
        }
    }

    #[test]
    fn jobspec_runs_and_boxes_identically() {
        let spec = || JobSpec::new((0..4).map(OneUnit).collect(), 4).label("unit");
        let direct = spec().run().unwrap();
        assert!(direct.metrics.all_work_done());
        let job = spec().into_job();
        assert_eq!(job.label(), "unit");
        assert_eq!(job.slots(), 4);
        let boxed = (job.thunk)().unwrap();
        assert_eq!(boxed.as_sync().unwrap(), &direct);
    }

    #[test]
    fn slowdown_scenarios_wrap_automatically() {
        let spec = JobSpec::new((0..4).map(OneUnit).collect(), 4).scenario(Scenario::Slowdown {
            pid: 0,
            from: 1,
            factor: 4,
            rounds: 8,
        });
        let report = spec.run().unwrap();
        assert!(report.metrics.all_work_done());
    }
}
