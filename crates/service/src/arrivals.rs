//! Pluggable job-arrival models: the virtual instants at which a stream
//! of Do-All jobs reaches the [`Session`](crate::Session).
//!
//! [`ArrivalModel::Bursty`] is fully deterministic (no floats, no RNG) —
//! experiments pin exact cells on it. The Poisson and diurnal models draw
//! exponential gaps through `ln`, so their instants are deterministic per
//! seed on one host but not something to pin bitwise across libm
//! versions; experiments assert only inequalities over them.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A generator of job arrival instants on the virtual-time axis.
#[derive(Clone, Debug, PartialEq)]
pub enum ArrivalModel {
    /// Memoryless arrivals: i.i.d. exponential gaps with the given mean
    /// (virtual time units per job).
    Poisson {
        /// Mean inter-arrival gap, in virtual time units (must be > 0).
        mean_gap: f64,
    },
    /// Deterministic bursts: job `i` arrives at `(i / burst) * period` —
    /// `burst` simultaneous submissions every `period` units. Exact and
    /// float-free.
    Bursty {
        /// Jobs per burst (0 is treated as 1).
        burst: usize,
        /// Virtual time between bursts.
        period: u64,
    },
    /// A day/night cycle: exponential gaps whose mean swings between
    /// `peak_gap` (busiest instant) and `trough_gap` (quietest) over each
    /// `period`, via a raised-cosine profile. Models the "idle
    /// workstations at night" setting of the paper's introduction.
    Diurnal {
        /// Length of one full cycle in virtual time units.
        period: u64,
        /// Mean gap at the cycle's busiest point (must be > 0).
        peak_gap: f64,
        /// Mean gap at the quietest point (must be >= `peak_gap`).
        trough_gap: f64,
    },
}

impl ArrivalModel {
    /// Generates the first `count` arrival instants. Deterministic for a
    /// given `(model, seed, count)`; `Bursty` ignores the seed entirely.
    pub fn times(&self, seed: u64, count: usize) -> Vec<u128> {
        match *self {
            ArrivalModel::Poisson { mean_gap } => {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mean_gap = mean_gap.max(f64::MIN_POSITIVE);
                let mut clock = 0.0_f64;
                (0..count)
                    .map(|_| {
                        clock += exp_gap(&mut rng, mean_gap);
                        clock as u128
                    })
                    .collect()
            }
            ArrivalModel::Bursty { burst, period } => {
                let burst = burst.max(1);
                (0..count).map(|i| (i / burst) as u128 * u128::from(period)).collect()
            }
            ArrivalModel::Diurnal { period, peak_gap, trough_gap } => {
                let mut rng = SmallRng::seed_from_u64(seed);
                let peak_gap = peak_gap.max(f64::MIN_POSITIVE);
                let trough_gap = trough_gap.max(peak_gap);
                let period = period.max(1) as f64;
                let mut clock = 0.0_f64;
                (0..count)
                    .map(|_| {
                        // Raised cosine: phase 0 is the trough (quiet),
                        // phase 0.5 the peak (busy).
                        let phase = (clock / period).fract();
                        let busy = 0.5 - 0.5 * (std::f64::consts::TAU * phase).cos();
                        let mean = trough_gap + (peak_gap - trough_gap) * busy;
                        clock += exp_gap(&mut rng, mean);
                        clock as u128
                    })
                    .collect()
            }
        }
    }

    /// A stable short label for tables and baseline cell ids.
    pub fn label(&self) -> String {
        match *self {
            ArrivalModel::Poisson { mean_gap } => format!("poisson(gap={mean_gap})"),
            ArrivalModel::Bursty { burst, period } => format!("bursty({burst}/{period})"),
            ArrivalModel::Diurnal { period, peak_gap, trough_gap } => {
                format!("diurnal(T={period},{peak_gap}..{trough_gap})")
            }
        }
    }
}

/// One exponential gap with the given mean, via inverse transform.
fn exp_gap(rng: &mut SmallRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0_f64..1.0);
    // 1 - u is in (0, 1], so ln is finite and the gap non-negative.
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursty_is_exact_and_seed_free() {
        let m = ArrivalModel::Bursty { burst: 3, period: 50 };
        let times = m.times(7, 8);
        assert_eq!(times, vec![0, 0, 0, 50, 50, 50, 100, 100]);
        assert_eq!(times, m.times(999, 8));
    }

    #[test]
    fn poisson_is_deterministic_per_seed_and_monotone() {
        let m = ArrivalModel::Poisson { mean_gap: 25.0 };
        let a = m.times(42, 100);
        assert_eq!(a, m.times(42, 100));
        assert_ne!(a, m.times(43, 100));
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn diurnal_is_deterministic_and_monotone() {
        let m = ArrivalModel::Diurnal { period: 1_000, peak_gap: 5.0, trough_gap: 80.0 };
        let a = m.times(11, 200);
        assert_eq!(a, m.times(11, 200));
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ArrivalModel::Bursty { burst: 4, period: 100 }.label(), "bursty(4/100)");
        assert_eq!(ArrivalModel::Poisson { mean_gap: 25.0 }.label(), "poisson(gap=25)");
    }
}
