//! The virtual-time job-stream scheduler: a [`Session`] multiplexes a
//! stream of [`Job`]s over a shared slot [`Pool`] under an [`Admission`]
//! policy, and reports per-job [`JobRecord`]s plus fleet-wide
//! [`FleetMetrics`].
//!
//! Scheduling is a deterministic discrete-event simulation on the virtual
//! time axis. The rules, in order, at each instant:
//!
//! 1. Completions are processed before arrivals carrying the same
//!    timestamp (freed slots are visible to a simultaneous arrival).
//! 2. The deferred queue is strict FIFO with head-of-line blocking: a job
//!    never overtakes an earlier-queued job, even if it would fit.
//! 3. An arriving job starts immediately only when the queue is empty and
//!    enough slots are free; otherwise it is deferred if the queue has
//!    room, and rejected ([`RejectReason::QueueFull`]) if not. A job
//!    wider than the whole pool is rejected outright
//!    ([`RejectReason::Oversize`]).
//!
//! A job's service time is its engine-reported round count (final virtual
//! timestamp on the async plane), so the fleet clock and the engines'
//! clocks share one unit.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::job::{Job, JobError, JobReport};

/// A shared pool of process slots. A running job occupies as many slots
/// as it has processes (its system size `t`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pool {
    slots: usize,
}

impl Pool {
    /// A pool with the given total slot count.
    pub fn new(slots: usize) -> Self {
        Pool { slots }
    }

    /// Total slots in the pool.
    pub fn slots(&self) -> usize {
        self.slots
    }
}

/// The admission-control policy: how many jobs may wait in the deferred
/// queue before further arrivals are rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Admission {
    queue_cap: usize,
}

impl Admission {
    /// Admission with the given queue-depth cap (0 = no queueing: a job
    /// either starts on arrival or is rejected).
    pub fn new(queue_cap: usize) -> Self {
        Admission { queue_cap }
    }

    /// The queue-depth cap.
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }
}

/// Why an arriving job was turned away.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The deferred queue was at its [`Admission`] cap.
    QueueFull,
    /// The job needs more slots than the whole [`Pool`] has.
    Oversize,
}

/// The final disposition of one submitted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The job ran to completion on its engine.
    Completed,
    /// The job was never admitted.
    Rejected(RejectReason),
    /// The job was admitted but its engine run returned an error.
    Failed,
}

/// The service log for one submitted job.
#[derive(Debug)]
pub struct JobRecord {
    /// The job's [`JobSpec::label`](crate::JobSpec::label).
    pub label: String,
    /// Slots the job occupies while running.
    pub slots: usize,
    /// Virtual instant the job was submitted.
    pub submitted: u128,
    /// Virtual instant the job started running (`None` if rejected).
    pub started: Option<u128>,
    /// Virtual instant the job finished (`None` if rejected).
    pub finished: Option<u128>,
    /// Engine-reported service time in rounds (0 unless completed).
    pub rounds: u128,
    /// The job's disposition.
    pub verdict: Verdict,
    /// Whether the job completed after its declared deadline (sojourn
    /// time, queueing included, exceeded
    /// [`JobSpec::deadline`](crate::JobSpec::deadline)).
    pub deadline_missed: bool,
    /// The engine report (present iff completed).
    pub report: Option<JobReport>,
    /// The engine error (present iff failed).
    pub error: Option<JobError>,
}

impl JobRecord {
    /// Time from submission to completion (`None` unless completed).
    pub fn sojourn(&self) -> Option<u128> {
        self.finished.map(|f| f - self.submitted)
    }
}

/// Fleet-wide aggregates over one [`Session::run`].
#[derive(Clone, Debug, PartialEq)]
pub struct FleetMetrics {
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Jobs rejected by admission control.
    pub rejected: usize,
    /// Jobs whose engine run errored.
    pub failed: usize,
    /// Jobs that spent time in the deferred queue before starting.
    pub deferred: usize,
    /// Completed jobs whose sojourn exceeded their deadline.
    pub deadline_misses: usize,
    /// Deepest the deferred queue ever got.
    pub max_queue_depth: usize,
    /// Virtual instant of the last event (0 for an empty session).
    pub horizon: u128,
    /// Median engine rounds over completed jobs (nearest rank).
    pub p50_rounds: u128,
    /// 99th-percentile engine rounds over completed jobs (nearest rank).
    pub p99_rounds: u128,
    /// Median sojourn (submission → completion) over completed jobs.
    pub p50_sojourn: u128,
    /// 99th-percentile sojourn over completed jobs.
    pub p99_sojourn: u128,
    /// Busy slot-time over total slot-time: Σ slots·(finish−start) /
    /// (pool slots · horizon). 0 when the horizon is empty.
    pub utilization: f64,
    /// Total work units performed across completed jobs.
    pub work_total: u64,
    /// Total messages sent across completed jobs.
    pub messages: u64,
}

/// The outcome of a [`Session::run`]: per-job [`JobRecord`]s plus the
/// fleet aggregates.
#[derive(Debug)]
pub struct FleetReport {
    /// One record per submitted job, in arrival-processing order
    /// (earliest instant first; ties in submission order).
    pub records: Vec<JobRecord>,
    /// Fleet-wide aggregates.
    pub metrics: FleetMetrics,
}

impl FleetReport {
    /// The first record with the given label, if any.
    pub fn find(&self, label: &str) -> Option<&JobRecord> {
        self.records.iter().find(|r| r.label == label)
    }
}

/// Mutable scheduler state threaded through the event loop.
struct Sched {
    free: usize,
    /// (finish instant, tie-break, slots to free).
    running: BinaryHeap<Reverse<(u128, usize, usize)>>,
    horizon: u128,
    busy_slot_time: u128,
    started: usize,
}

impl Sched {
    /// Runs `job` at instant `now`, fills in its record, and registers
    /// the slot release. The caller has already checked that it fits.
    fn start(&mut self, job: Job, rec: &mut JobRecord, now: u128) {
        rec.started = Some(now);
        match (job.thunk)() {
            Ok(report) => {
                let rounds = report.rounds();
                let finish = now + rounds;
                self.free -= job.slots;
                self.running.push(Reverse((finish, self.started, job.slots)));
                self.started += 1;
                self.busy_slot_time += rounds * job.slots as u128;
                self.horizon = self.horizon.max(finish);
                rec.finished = Some(finish);
                rec.rounds = rounds;
                rec.verdict = Verdict::Completed;
                rec.deadline_missed = job.deadline.is_some_and(|d| finish - rec.submitted > d);
                rec.report = Some(report);
            }
            Err(err) => {
                // A failed run aborts instantly: slots are never held and
                // service time is 0.
                rec.finished = Some(now);
                rec.verdict = Verdict::Failed;
                rec.error = Some(err);
            }
        }
    }
}

/// A virtual-time serving session: submit jobs at chosen instants, then
/// [`run`](Session::run) the stream to completion.
#[derive(Debug)]
pub struct Session {
    pool: Pool,
    admission: Admission,
    pending: Vec<(u128, usize, Job)>,
}

impl Session {
    /// A session over the given pool and admission policy.
    pub fn new(pool: Pool, admission: Admission) -> Self {
        Session { pool, admission, pending: Vec::new() }
    }

    /// The session's pool.
    pub fn pool(&self) -> Pool {
        self.pool
    }

    /// The session's admission policy.
    pub fn admission(&self) -> Admission {
        self.admission
    }

    /// Submits a job arriving at virtual instant `at`. Jobs sharing an
    /// instant are processed in submission order.
    pub fn submit(&mut self, at: u128, job: Job) {
        let seq = self.pending.len();
        self.pending.push((at, seq, job));
    }

    /// Jobs submitted so far.
    pub fn queued(&self) -> usize {
        self.pending.len()
    }

    /// Runs the whole stream to completion. Deterministic: the schedule
    /// depends only on the submitted (instant, job) pairs and the
    /// pool/admission limits.
    pub fn run(self) -> FleetReport {
        let Session { pool, admission, mut pending } = self;
        pending.sort_by_key(|&(at, seq, _)| (at, seq));

        let mut records: Vec<JobRecord> = Vec::with_capacity(pending.len());
        // Deferred-queue entries point at their (already pushed) record.
        let mut queue: VecDeque<(usize, Job)> = VecDeque::new();
        let mut deferred = 0usize;
        let mut max_queue_depth = 0usize;
        let mut sched = Sched {
            free: pool.slots,
            running: BinaryHeap::new(),
            horizon: 0,
            busy_slot_time: 0,
            started: 0,
        };

        let mut arrivals = pending.into_iter().peekable();
        loop {
            let next_completion = sched.running.peek().map(|Reverse((at, _, _))| *at);
            let next_arrival = arrivals.peek().map(|&(at, _, _)| at);
            match (next_completion, next_arrival) {
                (None, None) => break,
                // Completions first at equal instants: freed slots are
                // visible to simultaneous arrivals.
                (Some(c), a) if a.is_none_or(|a| c <= a) => {
                    let Reverse((now, _, slots)) = sched.running.pop().expect("peeked");
                    sched.free += slots;
                    sched.horizon = sched.horizon.max(now);
                    // Drain the queue head-of-line: stop at the first job
                    // that does not fit.
                    while queue.front().is_some_and(|(_, job)| job.slots <= sched.free) {
                        let (idx, job) = queue.pop_front().expect("checked");
                        let mut rec = std::mem::replace(&mut records[idx], placeholder());
                        sched.start(job, &mut rec, now);
                        records[idx] = rec;
                    }
                }
                _ => {
                    let (now, _, job) = arrivals.next().expect("peeked");
                    sched.horizon = sched.horizon.max(now);
                    let mut rec = JobRecord {
                        label: job.label.clone(),
                        slots: job.slots,
                        submitted: now,
                        started: None,
                        finished: None,
                        rounds: 0,
                        verdict: Verdict::Rejected(RejectReason::QueueFull),
                        deadline_missed: false,
                        report: None,
                        error: None,
                    };
                    if job.slots > pool.slots {
                        rec.verdict = Verdict::Rejected(RejectReason::Oversize);
                        records.push(rec);
                    } else if queue.is_empty() && job.slots <= sched.free {
                        sched.start(job, &mut rec, now);
                        records.push(rec);
                    } else if queue.len() < admission.queue_cap {
                        let idx = records.len();
                        records.push(rec);
                        queue.push_back((idx, job));
                        deferred += 1;
                        max_queue_depth = max_queue_depth.max(queue.len());
                    } else {
                        records.push(rec);
                    }
                }
            }
        }
        debug_assert!(queue.is_empty(), "every admitted job must eventually start");

        let metrics = summarize(
            pool,
            &records,
            sched.horizon,
            deferred,
            max_queue_depth,
            sched.busy_slot_time,
        );
        FleetReport { records, metrics }
    }
}

/// A throwaway record swapped in while a deferred job's real record is
/// being filled (never observable in the final report).
fn placeholder() -> JobRecord {
    JobRecord {
        label: String::new(),
        slots: 0,
        submitted: 0,
        started: None,
        finished: None,
        rounds: 0,
        verdict: Verdict::Failed,
        deadline_missed: false,
        report: None,
        error: None,
    }
}

/// Builds the fleet aggregates from the finished records.
fn summarize(
    pool: Pool,
    records: &[JobRecord],
    horizon: u128,
    deferred: usize,
    max_queue_depth: usize,
    busy_slot_time: u128,
) -> FleetMetrics {
    let mut completed = 0usize;
    let mut rejected = 0usize;
    let mut failed = 0usize;
    let mut rounds: Vec<u128> = Vec::new();
    let mut sojourns: Vec<u128> = Vec::new();
    let mut work_total = 0u64;
    let mut messages = 0u64;
    for rec in records {
        match rec.verdict {
            Verdict::Completed => {
                completed += 1;
                rounds.push(rec.rounds);
                if let Some(s) = rec.sojourn() {
                    sojourns.push(s);
                }
                if let Some(report) = &rec.report {
                    work_total += report.metrics().work_total;
                    messages += report.metrics().messages;
                }
            }
            Verdict::Rejected(_) => rejected += 1,
            Verdict::Failed => failed += 1,
        }
    }
    rounds.sort_unstable();
    sojourns.sort_unstable();
    let slot_time = pool.slots as u128 * horizon;
    FleetMetrics {
        jobs: records.len(),
        completed,
        rejected,
        failed,
        deferred,
        deadline_misses: records.iter().filter(|r| r.deadline_missed).count(),
        max_queue_depth,
        horizon,
        p50_rounds: percentile(&rounds, 50),
        p99_rounds: percentile(&rounds, 99),
        p50_sojourn: percentile(&sojourns, 50),
        p99_sojourn: percentile(&sojourns, 99),
        utilization: if slot_time == 0 { 0.0 } else { busy_slot_time as f64 / slot_time as f64 },
        work_total,
        messages,
    }
}

/// Nearest-rank percentile over sorted values (0 for an empty slice).
fn percentile(sorted: &[u128], p: u128) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len() as u128).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}
