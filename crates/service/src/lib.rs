//! # doall-service
//!
//! The job-stream service plane: the paper's own motivation (§1) is a pool
//! of workstations serving a *stream* of computations, not a single
//! (n, t) instance. This crate supplies the missing layer:
//!
//! * [`JobSpec`] — one builder describing a Do-All job (processes +
//!   scenario + limits), runnable on **either plane**: [`JobSpec::run`]
//!   drives the synchronous round engine, [`JobSpec::run_async`] the
//!   event-driven one. It replaces the split
//!   `run(procs, adversary, RunConfig)` / `run_async(...)` call styles
//!   (both remain available as low-level entry points).
//! * [`Pool`] / [`Admission`] / [`Session`] — a virtual-time job-stream
//!   scheduler: jobs arrive at virtual instants (hand-placed or drawn from
//!   an [`ArrivalModel`]), are admitted onto a shared slot pool under a
//!   queue-depth cap, and each admitted job runs on the existing engine —
//!   **bit-identically** to a direct [`JobSpec::run`], because both paths
//!   funnel through the same private execution routine
//!   (`tests/service_differential.rs` pins this).
//! * [`FleetReport`] — per-job records plus fleet-wide aggregates
//!   (p50/p99 completion rounds and sojourn, pool utilization, admission
//!   statistics), built on the engine's own [`Metrics`](doall_sim::Metrics).
//!
//! ## Serving a stream
//!
//! ```
//! use doall_core::ProtocolB;
//! use doall_service::{Admission, ArrivalModel, JobSpec, Pool, Session};
//!
//! let mut session = Session::new(Pool::new(32), Admission::new(4));
//! let arrivals = ArrivalModel::Bursty { burst: 4, period: 100 };
//! for (i, at) in arrivals.times(7, 12).into_iter().enumerate() {
//!     let spec = JobSpec::new(ProtocolB::processes(64, 16)?, 64)
//!         .label(format!("job{i}"))
//!         .deadline(10_000);
//!     session.submit(at, spec.into_job());
//! }
//! let fleet = session.run();
//! assert_eq!(fleet.metrics.completed + fleet.metrics.rejected, 12);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod arrivals;
mod job;
mod session;

pub use arrivals::ArrivalModel;
pub use job::{Job, JobError, JobReport, JobSpec};
pub use session::{
    Admission, FleetMetrics, FleetReport, JobRecord, Pool, RejectReason, Session, Verdict,
};
