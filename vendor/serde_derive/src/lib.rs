//! Offline shim for `serde_derive`: the derive macros parse nothing and
//! emit nothing. The paired `serde` shim provides blanket trait impls, so
//! an empty expansion is sufficient for `#[derive(Serialize, Deserialize)]`
//! (including `#[serde(...)]` helper attributes) to compile.
//!
//! This crate exists because the build environment has no network access to
//! a cargo registry. Swap the workspace back to the real serde once one is
//! available; no source changes are required.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; accepts and ignores `#[serde(...)]` attrs.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; accepts and ignores `#[serde(...)]` attrs.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
