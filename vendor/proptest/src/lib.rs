//! Offline shim for `proptest`: the subset this workspace's property tests
//! use — the `proptest!` macro with `#![proptest_config(...)]`, strategies
//! over numeric ranges and tuples, `any::<T>()`, `prop_map`, `Just`, and
//! the `prop_assert*`/`prop_assume!` macros.
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * **No shrinking.** A failing case panics with the drawn inputs in the
//!   panic message instead of a minimized counterexample.
//! * **Fixed derivation.** Case `i` of test `f` draws from a SplitMix64
//!   stream seeded by `hash(module_path::f) ⊕ i`, so failures reproduce
//!   exactly across runs without a persistence file.
//!
//! Swap the workspace dependency back to crates.io proptest for shrinking;
//! the macro grammar accepted here is a subset of the real one, so tests
//! need no changes.

/// Deterministic RNG and run configuration.
pub mod test_runner {
    /// Run configuration (shim for `proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Accepted for parity; the shim never shrinks.
        pub max_shrink_iters: u32,
        /// Accepted for parity; the shim derives cases deterministically.
        pub failure_persistence: Option<()>,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0, failure_persistence: None }
        }
    }

    use rand::rngs::SmallRng;
    use rand::{Rng, RngCore, SeedableRng};

    /// Per-case deterministic RNG, backed by the `rand` shim's [`SmallRng`]
    /// so the two shims share one generator implementation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// RNG for case `case` of the test identified by `test_hash`.
        pub fn for_case(test_hash: u64, case: u64) -> Self {
            TestRng {
                inner: SmallRng::seed_from_u64(
                    test_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform draw from `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            self.inner.gen_range(0.0f64..1.0)
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// FNV-1a, used to give each property test its own RNG stream.
    pub fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A way of drawing values of one type (shim for `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The type of value this strategy draws.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps drawn values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    // Numeric range strategies delegate to the `rand` shim's uniform
    // sampling, so range arithmetic lives in exactly one place.
    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::SampleRange::sample_single(self.clone(), rng)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::SampleRange::sample_single(self.clone(), rng)
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }

    /// Strategy for `any::<T>()`.
    #[derive(Clone, Debug)]
    pub struct Any<T>(PhantomData<T>);

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_unit_f64()
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T` (shim for `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property, reporting the drawn inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skips the current case when its drawn inputs don't satisfy `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}

/// Declares property tests (shim for `proptest::proptest!`).
///
/// Accepted grammar — a subset of real proptest's:
///
/// ```text
/// proptest! {
///     #![proptest_config(expr)]          // optional
///     #[test]
///     fn name(pat in strategy, ...) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __hash = $crate::test_runner::fnv1a(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..u64::from(__config.cases) {
                let mut __rng = $crate::test_runner::TestRng::for_case(__hash, __case);
                $(let $pat = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);)*
                // The closure scopes `prop_assume!`'s early `return` to this
                // case; a panic (from `prop_assert!`) still fails the test.
                let __case_fn = move || $body;
                __case_fn();
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case(1, 2);
        let s = (1u64..=6, 1u64..=6).prop_map(|(a, b)| (a * a, a * a * b));
        for _ in 0..200 {
            let (t, n) = s.sample(&mut rng);
            assert!((1..=36).contains(&t));
            assert_eq!(n % t, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// The macro itself: draws respect their strategies.
        #[test]
        fn macro_draws_respect_strategies((a, b) in (0u64..10, 5u64..15), f in 0.0f64..1.0, s in any::<u64>()) {
            prop_assume!(a != 9);
            prop_assert!(a < 10);
            prop_assert!((5..15).contains(&b));
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert_eq!(s, s);
        }
    }
}
