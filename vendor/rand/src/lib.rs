//! Offline shim for `rand` 0.8: exactly the subset this workspace uses —
//! `rngs::SmallRng`, `SeedableRng::seed_from_u64`, `Rng::{gen_bool,
//! gen_range}` over integer and float ranges.
//!
//! The generator is SplitMix64: not cryptographic, but fast, seedable, and
//! statistically fine for simulation adversaries and delay sampling. Runs
//! are reproducible per seed, which is all the simulator requires. Swap the
//! workspace dependency back to crates.io rand once a registry is
//! available; the API subset here matches rand 0.8 so no source changes
//! are needed.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring the `rand::Rng` extension trait.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of [0, 1]: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % width) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % width) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        start + unit_f64(rng.next_u64()) * (end - start)
    }
}

/// Mirror of `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, seedable generator (SplitMix64 under the hood).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(
            (0..10).map(|_| a.gen_range(0u64..1000)).collect::<Vec<_>>(),
            (0..10).map(|_| c.gen_range(0u64..1000)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
