//! Offline shim for `criterion`: the surface API this workspace's benches
//! use (`Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`,
//! `black_box`, `criterion_group!`, `criterion_main!`) backed by a simple
//! warmup-then-measure wall-clock loop.
//!
//! No statistics, outlier rejection, or HTML reports — each benchmark
//! prints one line with the mean iteration time. Good enough to compare
//! runs by eye and to keep `cargo bench` compiling and runnable offline;
//! swap the workspace dependency back to crates.io criterion for real
//! measurements.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark: a function name and an optional parameter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a parameter, `name/param`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// A benchmark id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Calls `routine` repeatedly — a short warmup, then a measured batch —
    /// and records total time and iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        const WARMUP: Duration = Duration::from_millis(50);
        const MEASURE: Duration = Duration::from_millis(300);

        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }

        // Batch size so the measured loop checks the clock rarely.
        let per_iter = warm_start.elapsed() / (warm_iters.max(1) as u32);
        let batch = (MEASURE.as_nanos() / per_iter.as_nanos().max(1) / 10).clamp(1, 1 << 20) as u64;

        let mut iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < MEASURE {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

/// Top-level benchmark driver (shim for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: group_name.into(), _criterion: self }
    }
}

/// A named group of related benchmarks (shim for criterion's group).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Finishes the group. (No-op in the shim; kept for API parity.)
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    match bencher.measured {
        Some((total, iters)) if iters > 0 => {
            let mean = total / (iters as u32);
            println!("bench: {id:<60} {mean:>12.2?}/iter ({iters} iters)");
        }
        _ => println!("bench: {id:<60} (no measurement recorded)"),
    }
}

/// Collects benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "n8").to_string(), "f/n8");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher::default();
        b.iter(|| 1 + 1);
        let (total, iters) = b.measured.expect("measured");
        assert!(iters > 0);
        assert!(total > Duration::ZERO);
    }
}
