//! Offline shim for `serde`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` today (to keep
//! report types ready for a JSON/CSV export layer); nothing serializes yet,
//! so the traits are markers with blanket impls and the derives are no-ops.
//! When a registry becomes available, point the workspace dependency back
//! at crates.io serde — no source changes are required anywhere else.

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented for all types.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Mirror of `serde::de` far enough for `use serde::de::DeserializeOwned`.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Mirror of `serde::ser` far enough for `use serde::ser::Serialize`.
pub mod ser {
    pub use crate::Serialize;
}
