//! # doall
//!
//! A complete Rust implementation of Dwork, Halpern & Waarts, *Performing
//! Work Efficiently in the Presence of Faults* (PODC 1992 / SIAM J.
//! Computing): the Do-All problem in a synchronous, crash-prone,
//! message-passing system.
//!
//! `t` processes must perform `n` independent, idempotent units of work so
//! that in every execution with at least one survivor, all `n` units get
//! done — while minimizing **work** (units performed, with multiplicity),
//! **messages**, and **time** (rounds).
//!
//! ## The protocol suite
//!
//! | Protocol | Work | Messages | Rounds |
//! |---|---|---|---|
//! | [`ProtocolA`] | `≤ 3n` | `≤ 9t√t` | `≤ nt + 3t²` |
//! | [`ProtocolB`] | `≤ 3n` | `≤ 10t√t` | `≤ 3n + 8t` |
//! | [`ProtocolC`] | `≤ n + 2t` | `≤ n + 8t log t` | exponential |
//! | [`ProtocolC`]′ (Cor. 3.9) | `O(n)` | `O(t log t)` | exponential |
//! | [`ProtocolD`] | `≤ 2n` | `≤ (4f+2)t²` | `(f+1)n/t + 4f + 2` |
//!
//! plus the §1 baselines ([`ReplicateAll`], [`Lockstep`]), the §3 strawman
//! ([`NaiveSpread`]), the asynchronous plane — §2.1's Protocol A variant
//! ([`AsyncProtocolA`]), the detector-driven Protocol B analogue
//! ([`AsyncProtocolB`]) and the replicate baseline ([`AsyncReplicate`]),
//! all run by [`sim::asynch::run_async`] under pluggable
//! [`sim::asynch::AsyncAdversary`]s — and the §5 Byzantine-agreement
//! reduction ([`agreement::BaSystem`]).
//!
//! ## Quickstart
//!
//! One job, one builder: a [`JobSpec`] names the protocol processes, the
//! failure [`workload::Scenario`], and the engine limits, and runs on
//! either plane ([`JobSpec::run`] / [`JobSpec::run_async`]).
//!
//! ```
//! use doall::{JobSpec, ProtocolB, workload::Scenario};
//!
//! // 64 units of work, 16 processes, 8 of them doomed to crash.
//! let report = JobSpec::new(ProtocolB::processes(64, 16)?, 64)
//!     .scenario(Scenario::Random { seed: 7, p: 0.01, max_crashes: 8 })
//!     .max_rounds(100_000u64)
//!     .run()?;
//!
//! assert!(report.metrics.all_work_done());      // correctness
//! assert!(report.metrics.work_total <= 3 * 64); // Theorem 2.8(a)
//! assert!(report.metrics.rounds <= 3u64 * 64 + 8 * 16); // Theorem 2.8(c)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The raw entry points (`sim::run(procs, adversary, RunConfig)` and
//! `sim::asynch::run_async`) remain for custom adversaries; a job served
//! through a [`service::Session`] stream is bit-identical to the direct
//! [`JobSpec::run`] above.
//!
//! ## Serving a job stream
//!
//! The paper's own setting (§1) is a pool of workstations serving a
//! *stream* of computations. [`service`] supplies that layer: jobs drawn
//! from an [`service::ArrivalModel`] are admitted onto a shared
//! [`Pool`] under a queue-depth cap and multiplexed by a [`Session`],
//! which reports per-job records plus fleet aggregates (p50/p99
//! completion rounds, utilization, admission statistics). See
//! `examples/idle_workstations.rs` and `README.md` §"Serving a job
//! stream".
//!
//! See `examples/` for runnable scenarios (reactor valves, idle
//! workstations, Byzantine agreement) and `DESIGN.md` / `EXPERIMENTS.md`
//! for the paper-reproduction map.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub use doall_agreement as agreement;
pub use doall_bounds as bounds;
pub use doall_core as core;
pub use doall_service as service;
pub use doall_sim as sim;
pub use doall_workload as workload;

pub use doall_core::{
    AsyncProtocolA, AsyncProtocolB, AsyncReplicate, ConfigError, Lockstep, NaiveSpread, ProtocolA,
    ProtocolB, ProtocolC, ProtocolD, ReplicateAll,
};
pub use doall_service::{JobSpec, Pool, Session};
