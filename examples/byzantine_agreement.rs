//! §5 of the paper: Byzantine agreement (crash-fault model) built on the
//! work protocols. "Informing process i of the general's value" is one
//! idempotent unit of work; the `t + 1` senders perform it with Protocol B
//! — yielding a *constructive* `O(n + t√t)`-message agreement algorithm —
//! or Protocol C for `O(n + t log t)` messages at exponential time.
//!
//! ```sh
//! cargo run --example byzantine_agreement
//! ```

use doall::agreement::{BaSystem, Engine, FloodingBa};
use doall::bounds::theorems;
use doall::sim::{CrashSchedule, CrashSpec, NoFailures, Pid};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, t) = (64u64, 8u64); // t + 1 = 9 senders (a perfect square)
    let value = 17;

    println!("Byzantine agreement among n = {n} processes, up to t = {t} crash failures");
    println!("general's value: {value}");
    println!();

    // --- §5 reduction via Protocol B -------------------------------------
    let outcome = BaSystem::new(n, t, Engine::B)?.general_value(value).run(NoFailures)?;
    assert!(outcome.agreement() && outcome.validity());
    println!("via Protocol B (failure-free):");
    println!("  decided {} / {n}, all on {value}", outcome.decided_count());
    println!(
        "  messages: {} (bound O(n + t√t) = {})",
        outcome.metrics.messages,
        theorems::ba_via_b_messages(n, t)
    );
    println!("  rounds:   {}", outcome.metrics.rounds);

    // --- the general crashes mid-broadcast --------------------------------
    let adversary = CrashSchedule::new().crash_at(Pid::new(0), 1, CrashSpec::subset([Pid::new(3)]));
    let outcome = BaSystem::new(n, t, Engine::B)?.general_value(value).run(adversary)?;
    assert!(outcome.agreement(), "agreement must survive a treacherous stage 1");
    let agreed = outcome.decisions.iter().flatten().next().copied();
    println!();
    println!("via Protocol B (general crashes mid-broadcast, only sender 3 informed):");
    println!("  decided {} / {n}, all on {agreed:?}", outcome.decided_count());

    // --- the naive flooding baseline --------------------------------------
    let (decisions, metrics) = FloodingBa::run_system(n, t, value, NoFailures)?;
    assert!(decisions.iter().all(|d| *d == Some(value)));
    println!();
    println!("naive flooding baseline (everyone echoes every round for t + 1 rounds):");
    println!(
        "  messages: {} — {}x the §5 reduction",
        metrics.messages,
        metrics.messages / outcome.metrics.messages.max(1)
    );

    println!("\n§5's reduction beats flooding while keeping agreement under crashes.");
    Ok(())
}
