//! §1 of the paper: what if the work is *not* initially common knowledge?
//!
//! > "If even one process knows about this work, then it can act as a
//! > general, run Byzantine agreement on the pool of work …, and then the
//! > actual work is performed by running the same algorithm a second
//! > time. If n … is Ω(t), the overall cost at most doubles."
//!
//! Here process 0 alone discovers a pool of 256 units; the 16 processes
//! first agree on the pool (§5 agreement via Protocol B), then perform it
//! (Protocol B again) — with crashes in both stages.
//!
//! ```sh
//! cargo run --example bootstrap_pool
//! ```

use doall::agreement::bootstrap::{direct_effort, run_bootstrap};
use doall::sim::{CrashSchedule, CrashSpec, NoFailures, Pid};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, t) = (256u64, 16u64);
    println!("Process 0 discovers a pool of {n} units; {t} processes must all learn of it");
    println!("and perform it, tolerating up to {} crashes.", t - 1);
    println!();

    // Failure-free: measure the §1 "at most doubles" claim.
    let outcome = run_bootstrap(n, t, NoFailures, &[])?;
    let direct = direct_effort(n, t)?;
    println!("failure-free:");
    println!("  agreed pool       : {} units", outcome.agreed_pool);
    println!("  agreement effort  : {}", outcome.agreement.effort());
    println!("  work effort       : {}", outcome.work.effort());
    println!(
        "  total             : {} (direct, common-knowledge: {direct})",
        outcome.total_effort()
    );
    assert!(outcome.total_effort() <= 2 * direct, "§1: cost at most doubles");

    // Crashes in both stages.
    let ba_adv = CrashSchedule::new().crash_at(Pid::new(1), 2, CrashSpec::silent()).crash_at(
        Pid::new(2),
        4,
        CrashSpec::prefix(1),
    );
    let outcome = run_bootstrap(n, t, ba_adv, &[(Pid::new(3), 5), (Pid::new(4), 20)])?;
    println!();
    println!("with crashes during agreement (p1, p2) and work (p3, p4):");
    println!("  agreed pool       : {} units", outcome.agreed_pool);
    println!("  all work done     : {}", outcome.work.all_work_done());
    println!("  total effort      : {}", outcome.total_effort());
    assert!(outcome.work.all_work_done());
    assert_eq!(outcome.agreed_pool, n);

    println!("\nOne informed process suffices; the cost at most doubles (§1).");
    Ok(())
}
