//! §1 of the paper: what if the work is *not* initially common knowledge?
//!
//! > "If even one process knows about this work, then it can act as a
//! > general, run Byzantine agreement on the pool of work …, and then the
//! > actual work is performed by running the same algorithm a second
//! > time. If n … is Ω(t), the overall cost at most doubles."
//!
//! Here process 0 alone discovers a pool of 256 units; the 16 processes
//! first agree on the pool (§5 agreement via Protocol B), then perform it
//! (Protocol B again) — with crashes in both stages. The agreed pool is
//! also served as a job through the service plane's shared [`Pool`], and
//! the engine metrics come out identical to the bootstrap's own work
//! stage: serving through a [`Session`] adds no distortion.
//!
//! ```sh
//! cargo run --example bootstrap_pool
//! ```

use doall::agreement::bootstrap::{direct_effort, run_bootstrap};
use doall::service::{Admission, JobSpec, Pool, Session};
use doall::sim::{CrashSchedule, CrashSpec, NoFailures, Pid};
use doall::ProtocolB;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, t) = (256u64, 16u64);
    println!("Process 0 discovers a pool of {n} units; {t} processes must all learn of it");
    println!("and perform it, tolerating up to {} crashes.", t - 1);
    println!();

    // Failure-free: measure the §1 "at most doubles" claim.
    let outcome = run_bootstrap(n, t, NoFailures, &[])?;
    let direct = direct_effort(n, t)?;
    println!("failure-free:");
    println!("  agreed pool       : {} units", outcome.agreed_pool);
    println!("  agreement effort  : {}", outcome.agreement.effort());
    println!("  work effort       : {}", outcome.work.effort());
    println!(
        "  total             : {} (direct, common-knowledge: {direct})",
        outcome.total_effort()
    );
    assert!(outcome.total_effort() <= 2 * direct, "§1: cost at most doubles");

    // The agreed pool, served through the service plane: one job on the
    // shared workstation pool, bit-identical to the bootstrap's own
    // failure-free work stage.
    let mut session = Session::new(Pool::new(t as usize), Admission::new(1));
    let spec =
        JobSpec::new(ProtocolB::processes(outcome.agreed_pool, t)?, outcome.agreed_pool as usize)
            .label("agreed-pool");
    session.submit(0, spec.into_job());
    let fleet = session.run();
    let served = fleet.find("agreed-pool").expect("served");
    let served_metrics = served.report.as_ref().unwrap().metrics();
    assert_eq!(served_metrics, &outcome.work, "service plane distorts nothing");
    println!(
        "  served as a job   : {} effort over {} rounds (identical metrics)",
        served_metrics.effort(),
        served.rounds
    );

    // Crashes in both stages.
    let ba_adv = CrashSchedule::new().crash_at(Pid::new(1), 2, CrashSpec::silent()).crash_at(
        Pid::new(2),
        4,
        CrashSpec::prefix(1),
    );
    let outcome = run_bootstrap(n, t, ba_adv, &[(Pid::new(3), 5), (Pid::new(4), 20)])?;
    println!();
    println!("with crashes during agreement (p1, p2) and work (p3, p4):");
    println!("  agreed pool       : {} units", outcome.agreed_pool);
    println!("  all work done     : {}", outcome.work.all_work_done());
    println!("  total effort      : {}", outcome.total_effort());
    assert!(outcome.work.all_work_done());
    assert_eq!(outcome.agreed_pool, n);

    println!("\nOne informed process suffices; the cost at most doubles (§1).");
    Ok(())
}
