//! §2.1's asynchronous remark, live: the same Do-All workload on the
//! event-driven plane — adversary-seeded message delays, a sound
//! retirement detector, and a crash striking mid-broadcast.
//!
//! ```sh
//! cargo run --release --example async_quickstart
//! ```

use doall::bounds::theorems;
use doall::sim::asynch::{AsyncCrashSchedule, AsyncReport, DelayDist};
use doall::sim::invariants::{check_activation_order, check_detector_soundness};
use doall::sim::{CrashSpec, Pid};
use doall::{AsyncProtocolA, AsyncProtocolB, AsyncReplicate, JobSpec};

fn describe(label: &str, report: &AsyncReport) {
    println!(
        "  {label:<16} work {:>5}  messages {:>5}  effort {:>5}  survivors {:>2}  final time {}",
        report.metrics.work_total,
        report.metrics.messages,
        report.metrics.effort(),
        report.survivor_count(),
        report.metrics.rounds,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, t) = (64u64, 16u64);
    println!("Asynchronous Do-All: n = {n} units, t = {t} processes.");
    println!("Delays: uniform in 1..=7 (seeded); detector notices delayed the same way.");
    println!("Adversary: p0 crashes on its 9th handler invocation, mid-broadcast —");
    println!("only the first 2 messages of that checkpoint escape.\n");

    // A custom adversary with no `Scenario` name: `run_async_with` is the
    // JobSpec escape hatch for exactly this case.
    let adversary = || AsyncCrashSchedule::new().crash_at(Pid::new(0), 9, CrashSpec::prefix(2));
    fn spec<P>(procs: Vec<P>, n: u64) -> JobSpec<P> {
        JobSpec::new(procs, n as usize).seed(42).delay(DelayDist::Uniform, 7).with_trace()
    }

    // Protocol A's asynchronous variant: a process activates once the
    // detector has reported every lower-numbered process retired.
    let a = spec(AsyncProtocolA::processes(n, t)?, n).run_async_with(adversary())?;
    // The Protocol B analogue (labeled extension): checkpoints already
    // prove their sender's predecessors retired, so only the un-inferable
    // detector reports are awaited — and no go_ahead is ever sent.
    let b = spec(AsyncProtocolB::processes(n, t)?, n).run_async_with(adversary())?;
    // The replicate baseline: perfect fault tolerance, Θ(tn) effort.
    let rep = spec(AsyncReplicate::processes(n, t)?, n).run_async_with(adversary())?;

    describe("async A", &a);
    describe("async B", &b);
    describe("replicate", &rep);

    // The §2.1 claim: Theorem 2.3's work/message bounds carry over.
    let bound = theorems::protocol_a(n, t);
    for (label, r) in [("A", &a), ("B", &b)] {
        assert!(r.metrics.all_work_done(), "async {label}: work left undone");
        assert!(r.metrics.work_total <= bound.work, "async {label}: 3n bound violated");
        assert!(r.metrics.messages <= bound.messages, "async {label}: 9t*sqrt(t) bound violated");
        assert!(
            check_activation_order(&r.trace).is_empty(),
            "async {label}: takeover discipline broken"
        );
        assert!(
            check_detector_soundness(&r.trace).is_empty(),
            "async {label}: detector accused a live process"
        );
    }
    assert_eq!(b.metrics.messages_by_class.get("go_ahead"), None);
    assert!(rep.metrics.all_work_done());
    assert!(rep.metrics.effort() > 4 * a.metrics.effort());

    println!("\nwork/message bounds (3n = {}, 9t*sqrt(t) = {}) hold;", bound.work, bound.messages);
    println!("activation order and detector soundness verified on the recorded traces;");
    println!("async B sent zero go_aheads — the retirement detector replaced the polling phase.");
    Ok(())
}
