//! An annotated, round-by-round replay of a Protocol B execution with a
//! mid-checkpoint crash — watch the checkpointing, the takeover deadline
//! arithmetic, and the `go ahead` polling play out.
//!
//! ```sh
//! cargo run --example trace_walkthrough
//! ```

use std::collections::BTreeMap;

use doall::core::ab::AbMsg;
use doall::sim::{run, CrashSpec, Event, Pid, RunConfig, Trigger, TriggerAdversary, TriggerRule};
use doall::ProtocolB;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, t) = (8u64, 4u64);

    // p0 dies during its second checkpoint broadcast; only one copy
    // escapes. p1 must take over via the DDB deadline.
    let adversary = TriggerAdversary::new(vec![TriggerRule {
        trigger: Trigger::NthSendRoundBy { pid: Pid::new(0), nth: 2 },
        target: None,
        spec: CrashSpec::prefix(1),
    }]);

    let report = run(
        ProtocolB::processes(n, t)?,
        adversary,
        RunConfig::new(n as usize, 10_000).with_trace(),
    )?;
    assert!(report.metrics.all_work_done());

    println!("Protocol B, n = {n} units, t = {t} processes (groups of √t = 2).");
    println!("Adversary: crash p0 during its 2nd checkpoint, delivering 1 copy.\n");

    // Group events by round for a readable timeline.
    let mut by_round: BTreeMap<doall::sim::Round, Vec<String>> = BTreeMap::new();
    for event in report.trace.events() {
        let (round, line) = match event {
            Event::Work { round, pid, unit } => (*round, format!("{pid} performs {unit}")),
            Event::Send { round, from, to, class } => {
                (*round, format!("{from} -> {to}  [{class}]"))
            }
            Event::Crash { round, pid } => (*round, format!("{pid} CRASHES")),
            Event::Recover { round, pid } => (*round, format!("{pid} RECOVERS")),
            Event::Terminate { round, pid } => (*round, format!("{pid} terminates")),
            Event::Note { round, pid, tag } => (*round, format!("{pid} *** {tag} ***")),
            Event::Notice { round, observer, retired } => {
                // Only the asynchronous engine emits these; a synchronous
                // trace never contains one.
                (*round, format!("detector informs {observer}: {retired} retired"))
            }
        };
        by_round.entry(round).or_default().push(line);
    }
    for (round, lines) in &by_round {
        println!("round {round:>3}:");
        for line in lines {
            println!("          {line}");
        }
    }

    println!(
        "\ntotals: work = {} (n = {n}), messages = {}, rounds = {}",
        report.metrics.work_total, report.metrics.messages, report.metrics.rounds
    );
    println!("message classes: {:?}", report.metrics.messages_by_class);
    let _ = AbMsg::GoAhead; // (the class names above come from this type)
    Ok(())
}
