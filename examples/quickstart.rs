//! Quickstart: run Protocol B on 64 units with 16 crash-prone processes
//! and check the Theorem 2.8 guarantees on the resulting metrics.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use doall::bounds::theorems;
use doall::workload::Scenario;
use doall::{JobSpec, ProtocolB};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, t) = (64u64, 16u64);

    // A reproducible adversary: random crashes, at most t - 1 of them so
    // the paper's "at least one survivor" premise holds.
    let scenario = Scenario::Random { seed: 2026, p: 0.02, max_crashes: (t - 1) as u32 };

    let report = JobSpec::new(ProtocolB::processes(n, t)?, n as usize)
        .scenario(scenario.clone())
        .max_rounds(1_000_000u64)
        .run()?;

    println!("Protocol B on n = {n} units, t = {t} processes ({})", scenario.label());
    println!("  all work done : {}", report.metrics.all_work_done());
    println!("  crashes       : {}", report.metrics.crashes);
    println!("  survivors     : {}", report.survivor_count());
    // Message counts are per-recipient (a k-wide checkpoint span counts k),
    // even though the engine stores and delivers each broadcast as one op.
    for (class, count) in &report.metrics.messages_by_class {
        println!("  {class:<14}: {count}");
    }
    println!();

    let bound = theorems::protocol_b(n, t);
    println!("  measured                 paper bound (Theorem 2.8)");
    println!("  work     {:>6}          {:>6}  (3n)", report.metrics.work_total, bound.work);
    println!("  messages {:>6}          {:>6}  (10t√t)", report.metrics.messages, bound.messages);
    println!("  rounds   {:>6}          {:>6}  (3n + 8t)", report.metrics.rounds, bound.rounds);
    println!("  effort   {:>6}          {:>6}", report.metrics.effort(), bound.effort());

    assert!(report.metrics.all_work_done(), "correctness: every unit performed");
    assert!(report.metrics.work_total <= bound.work);
    assert!(report.metrics.messages <= bound.messages);
    assert!(report.metrics.rounds <= bound.rounds);
    println!("\nAll Theorem 2.8 bounds hold.");
    Ok(())
}
