//! The paper's headline comparison (§1 + §6): work / messages / rounds /
//! effort for the trivial baselines and all four protocols, failure-free
//! and under crash scenarios. Reproduces the "who wins on which measure"
//! story: the baselines pay Θ(tn) effort, A/B/C are work-optimal with
//! small message terms, and D is time-optimal.
//!
//! Note the rounds column for C/C′ and naive-spread under failures: their
//! takeover deadlines are exponential in `n + t` (the paper's "at a price
//! in terms of time"), which is why `n + t` is kept small here.
//!
//! ```sh
//! cargo run --example protocol_comparison
//! ```

use doall::sim::{run, Metrics, Protocol, RunConfig, RunError};
use doall::workload::Scenario;
use doall::{Lockstep, NaiveSpread, ProtocolA, ProtocolB, ProtocolC, ProtocolD, ReplicateAll};

fn measure<P: Protocol + Send>(
    procs: Vec<P>,
    scenario: &Scenario,
    n: u64,
) -> Result<Metrics, RunError>
where
    P::Msg: Send + Sync + 'static,
{
    let report =
        run(procs, scenario.adversary::<P::Msg>(), RunConfig::new(n as usize, u64::MAX - 1))?;
    assert!(report.metrics.all_work_done(), "work incomplete under {}", scenario.label());
    Ok(report.metrics)
}

fn row(name: &str, m: &Metrics) {
    println!(
        "  {name:<14} {:>7} {:>9} {:>20} {:>9}",
        m.work_total,
        m.messages,
        m.rounds,
        m.effort()
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Perfect-square t, power-of-two t, t | n; n + t small enough that the
    // exponential (C, naive-spread) takeover deadlines stay below 2^64.
    let (n, t) = (32u64, 16u64);

    for scenario in [
        Scenario::FailureFree,
        Scenario::TakeoverCascade { victims: t - 1 },
        Scenario::DeadOnArrival { k: t / 2 },
    ] {
        println!("n = {n}, t = {t}, scenario: {}", scenario.label());
        println!("  {:<14} {:>7} {:>9} {:>20} {:>9}", "", "work", "messages", "rounds", "effort");
        row("replicate-all", &measure(ReplicateAll::processes(n, t)?, &scenario, n)?);
        row("lockstep", &measure(Lockstep::processes(n, t)?, &scenario, n)?);
        row("naive-spread", &measure(NaiveSpread::processes(n, t)?, &scenario, n)?);
        row("protocol A", &measure(ProtocolA::processes(n, t)?, &scenario, n)?);
        row("protocol B", &measure(ProtocolB::processes(n, t)?, &scenario, n)?);
        row("protocol C", &measure(ProtocolC::processes(n, t)?, &scenario, n)?);
        row("protocol C'", &measure(ProtocolC::processes_prime(n, t)?, &scenario, n)?);
        row("protocol D", &measure(ProtocolD::processes(n, t)?, &scenario, n)?);
        println!();
    }

    println!("Baselines pay Θ(tn) effort; A/B/C stay near n plus small message terms");
    println!("(C at an exponential price in time); D matches n/t + 2 rounds failure-free.");
    Ok(())
}
