//! The paper's motivating scenario (§1): before fuel is added to a
//! reactor, a bank of valves must all be closed — and verified closed —
//! despite controller crashes. Closing a valve is idempotent, so the
//! Do-All protocols apply directly.
//!
//! This example runs Protocol A under a takeover cascade (every controller
//! but the last dies right after closing one unreported valve), then
//! replays the execution trace against a real `ValveBank` to show that
//! repeated closes are harmless and every valve ends up closed.
//!
//! ```sh
//! cargo run --example valve_control
//! ```

use doall::core::ab::AbMsg;
use doall::sim::{run, RunConfig};
use doall::workload::{IdempotentTask, Scenario, ValveBank};
use doall::ProtocolA;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let valves = 36u64; // n units: close valve i
    let controllers = 9u64; // t processes

    let scenario = Scenario::TakeoverCascade { victims: controllers - 1 };
    println!("Closing {valves} reactor valves with {controllers} controllers");
    println!("Adversary: {}", scenario.label());
    println!();

    let report = run(
        ProtocolA::processes(valves, controllers)?,
        scenario.adversary::<AbMsg>(),
        RunConfig::new(valves as usize, 1_000_000).with_trace(),
    )?;

    // Replay the recorded execution against the physical valve bank.
    let mut bank = ValveBank::new(valves as usize);
    let operations = bank.replay(&report.trace);

    println!("  controllers crashed : {}", report.metrics.crashes);
    println!("  close operations    : {operations} (incl. repeats — idempotent)");
    println!("  valves closed       : {}/{valves}", bank.closed_count());
    println!("  repeated closes     : {}", report.metrics.wasted_work());
    println!("  messages            : {}", report.metrics.messages);
    println!("  rounds              : {}", report.metrics.rounds);

    assert!(bank.complete(), "every valve must be closed before fueling");
    // The work-optimality guarantee: at most one redone unit per takeover.
    assert_eq!(report.metrics.work_total, valves + controllers - 1);
    println!("\nAll valves verified closed; work stayed within n + t - 1.");
    Ok(())
}
