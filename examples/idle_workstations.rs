//! The paper's LAN motivation (§1): distribute a computation across idle
//! workstations, where a "failure" is a user reclaiming her machine. Here
//! the computation is an exhaustive SAT sweep (evaluating a boolean
//! formula on every assignment — §1's example of idempotent work), run
//! with the time-optimal Protocol D — and the workstations are managed as
//! a shared [`Pool`] serving a small overnight job stream through a
//! [`Session`].
//!
//! ```sh
//! cargo run --example idle_workstations
//! ```

use doall::bounds::theorems;
use doall::service::{Admission, JobSpec, Pool, Session};
use doall::workload::{FormulaSweep, IdempotentTask, Scenario};
use doall::ProtocolD;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // (x0 ∨ x1 ∨ ¬x2) ∧ (¬x0 ∨ x3) ∧ (x2 ∨ ¬x3 ∨ x4) ∧ (¬x1 ∨ ¬x4)
    let clauses = vec![
        vec![(0, true), (1, true), (2, false)],
        vec![(0, false), (3, true)],
        vec![(2, true), (3, false), (4, true)],
        vec![(1, false), (4, false)],
    ];
    let vars = 8u32;
    let n = 1u64 << vars; // 256 assignments to evaluate
    let t = 16u64; // idle workstations

    println!("SAT sweep: 2^{vars} = {n} assignments across {t} idle workstations");

    // The two shifts of the night arrive as a stream over one shared
    // workstation pool: each sweep occupies all t machines, so the second
    // job queues until the first completes.
    let mut session = Session::new(Pool::new(t as usize), Admission::new(4));
    let shifts = [
        ("quiet night (no reclaims)", Scenario::FailureFree),
        ("busy evening (reclaims)", Scenario::Random { seed: 42, p: 0.05, max_crashes: 7 }),
    ];
    for (i, (label, scenario)) in shifts.iter().enumerate() {
        let spec = JobSpec::new(ProtocolD::processes(n, t)?, n as usize)
            .scenario(scenario.clone())
            .max_rounds(100_000u64)
            .with_trace()
            .label(*label);
        session.submit(i as u128, spec.into_job());
    }
    let fleet = session.run();
    assert_eq!(fleet.metrics.completed, 2, "both sweeps must be served");

    for (label, _) in shifts {
        let record = fleet.find(label).expect("served job has a record");
        let report = record.report.as_ref().unwrap().as_sync().unwrap();

        let mut sweep = FormulaSweep::new(vars, clauses.clone());
        sweep.replay(&report.trace);
        assert!(sweep.complete(), "every assignment must be evaluated");

        let f = u64::from(report.metrics.crashes);
        let bound = theorems::protocol_d_normal(n, t, f);
        println!();
        println!("{label}:");
        println!("  reclaimed machines : {f}");
        println!("  evaluations        : {} (n = {n})", report.metrics.work_total);
        println!("  rounds             : {} (bound {})", report.metrics.rounds, bound.rounds);
        println!("  messages           : {} (bound {})", report.metrics.messages, bound.messages);
        println!("  satisfying found   : {}", sweep.satisfying_count());
        if f == 0 {
            assert_eq!(report.metrics.rounds, n / t + 2, "time-optimal when nobody reclaims");
        }
    }

    println!();
    println!(
        "fleet: {} jobs served over {} virtual rounds,",
        fleet.metrics.completed, fleet.metrics.horizon
    );
    println!(
        "  p50/p99 completion rounds : {}/{}",
        fleet.metrics.p50_rounds, fleet.metrics.p99_rounds
    );
    println!("  pool utilization          : {:.0}%", fleet.metrics.utilization * 100.0);

    println!("\nTime-optimal when quiet, graceful degradation when busy.");
    Ok(())
}
