//! Pinned three-fault lifecycles: one synchronous and one asynchronous
//! run, each under a composed [`FaultPlan`] of a degraded-mode window, an
//! omission window, and a crash-recovery — with every stage of every
//! fault's lifecycle (injection → trace-observable symptom → timed
//! repair) asserted against hard-coded rounds, counts, and totals.
//!
//! The numbers were derived by running each configuration once and
//! transcribing the trace (the derivation is walked through in
//! `EXPERIMENTS.md`, "Pinned fault lifecycles"). They are exact: any
//! change to fault scheduling, symptom emission, recovery semantics, the
//! engines' stepping order, or the async RNG stream shows up here as a
//! diff against the transcript, not as a vague invariant failure.

use doall::sim::asynch::{run_async, AsyncConfig};
use doall::sim::invariants::{check_degraded_rate, check_recovery_silence};
use doall::sim::{run, Event, FaultKind, FaultPlan, Pid, Round, RunConfig};
use doall::{AsyncProtocolB, ProtocolB};

/// Collects `(round, pid)` pairs of every note with the given tag.
fn notes(trace: &doall::sim::Trace, tag: &str) -> Vec<(u128, usize)> {
    trace.notes(tag).map(|(r, p)| (r.get(), p.index())).collect()
}

/// `(round, pid)` pairs in event order.
type Timeline = Vec<(u128, usize)>;

/// Collects `(round, pid)` pairs of every crash (resp. recovery) event.
fn crashes_and_recoveries(trace: &doall::sim::Trace) -> (Timeline, Timeline) {
    let mut crashes = Vec::new();
    let mut recoveries = Vec::new();
    for e in trace.events() {
        match e {
            Event::Crash { round, pid } => crashes.push((round.get(), pid.index())),
            Event::Recover { round, pid } => recoveries.push((round.get(), pid.index())),
            _ => {}
        }
    }
    (crashes, recoveries)
}

/// Protocol B (n = 8, t = 4) under three composed faults:
///
/// 1. `Slow { pid: 0, factor: 2 }` over rounds 2..8 — p0, sole active
///    worker, is halved: symptom note at round 2, repair note at 8.
/// 2. `OmitSends(0)` over rounds 9..13 — p0's checkpoint broadcasts are
///    suppressed (4 messages across 3 rounds), so p1's takeover deadline
///    is never reset and it keeps redoing the prefix.
/// 3. `CrashRecover { pid: 0, downtime: 5, stale }` at round 14 — p0
///    crashes after its round-14 step, revives stale at 19, finishes its
///    remaining queue, and retires last at 23.
#[test]
fn sync_three_fault_lifecycle_is_pinned() {
    let plan = FaultPlan::new([
        FaultKind::Slow { pid: Pid::new(0), factor: 2 }.at(2u64).for_rounds(6),
        FaultKind::OmitSends(Pid::new(0)).at(9u64).for_rounds(4),
        FaultKind::CrashRecover { pid: Pid::new(0), downtime: 5, wipe: false }.at(14u64),
    ]);
    let procs = plan.wrap(ProtocolB::processes(8, 4).unwrap());
    let report = run(procs, plan, RunConfig::new(8, 10_000).with_trace()).unwrap();

    // Totals: every unit done twice (p0 redoes 7, 8 after its stale
    // recovery; p1 redid 1..=6 while p0 was slowed and muted).
    assert!(report.metrics.all_work_done());
    assert_eq!(report.metrics.rounds, 23u64);
    assert_eq!(report.metrics.work_total, 16);
    assert_eq!(report.metrics.work_by_unit, vec![2u32; 8]);
    assert_eq!(report.metrics.messages, 10);
    assert_eq!(report.metrics.omissions, 4);
    assert_eq!(report.metrics.crashes, 1);
    assert_eq!(report.metrics.recoveries, 1);

    let trace = &report.trace;

    // Fault 1 (slowdown): injected at 2, symptom immediately (p0 was
    // acting every round), repaired exactly at the window's `until`.
    assert_eq!(notes(trace, "fault:slow"), vec![(2, 0)]);
    assert_eq!(notes(trace, "fault:slow:repaired"), vec![(8, 0)]);
    let rate = check_degraded_rate(trace, Pid::new(0), Round::new(2), Round::new(8), 2);
    assert!(rate.is_empty(), "degraded rate violated: {rate:?}");

    // Fault 2 (send omission): p0 checkpoints in rounds 9..12; one note
    // per round with suppressed sends, 4 suppressed messages in total.
    assert_eq!(notes(trace, "fault:omit"), vec![(9, 0), (10, 0), (11, 0)]);

    // Fault 3 (crash-recovery): crash lands at 14, revival 5 rounds
    // later; the recovered process stays silent during its downtime.
    let (crashes, recoveries) = crashes_and_recoveries(trace);
    assert_eq!(crashes, vec![(14, 0)]);
    assert_eq!(recoveries, vec![(19, 0)]);
    let silence = check_recovery_silence(trace);
    assert!(silence.is_empty(), "activity during downtime: {silence:?}");

    // Retirement order: p1 terminates at 19 having finished everything;
    // the idle watchers follow the terminal broadcast; the recovered p0
    // replays its stale queue and retires last.
    for pid in 1..4 {
        assert_eq!(trace.retirement_round(Pid::new(pid)), Some(Round::new(19)), "p{pid}");
    }
    assert_eq!(trace.retirement_round(Pid::new(0)), Some(Round::new(14)), "p0 crash comes first");
    let p0_terminate = trace
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Terminate { round, pid } if pid.index() == 0 => Some(round.get()),
            _ => None,
        })
        .collect::<Vec<_>>();
    assert_eq!(p0_terminate, vec![23]);
}

/// Async Protocol B (n = 8, t = 4, seed 3, `max_delay` 7) under three
/// composed faults:
///
/// 1. `Slow { pid: 1, factor: 4 }` over handler invocations 2..10 —
///    symptom at p1's first gated invocation (time 11), repair at 56.
/// 2. `OmitRecv(2)` over times 5..35 — one delivery to p2 is dropped at
///    time 13 (the detector's crash notice for p0).
/// 3. `CrashRecover { pid: 0, downtime: 40, wipe }` at time 9 — p0, the
///    sole worker, crashes after performing unit 5, revives wiped at 49,
///    redoes units 1..=4 and 5 (its wiped state knows nothing), then
///    finishes 6..=8 and terminates first at 64.
#[test]
fn async_three_fault_lifecycle_is_pinned() {
    let plan = FaultPlan::new([
        FaultKind::Slow { pid: Pid::new(1), factor: 4 }.at(2u64).for_rounds(8),
        FaultKind::OmitRecv(Pid::new(2)).at(5u64).for_rounds(30),
        FaultKind::CrashRecover { pid: Pid::new(0), downtime: 40, wipe: true }.at(9u64),
    ]);
    let procs = plan.wrap_async(AsyncProtocolB::processes(8, 4).unwrap());
    let cfg =
        AsyncConfig { max_delay: 7, max_events: 1_000_000, ..AsyncConfig::new(8, 3) }.with_trace();
    let report = run_async(procs, plan, cfg).unwrap();

    // Totals: units 1..=5 done twice (pre-crash work is lost to the
    // wipe), 6..=8 once; the single omission is the dropped notice.
    assert!(report.metrics.all_work_done());
    assert_eq!(report.metrics.rounds, 69u64);
    assert_eq!(report.metrics.work_total, 13);
    assert_eq!(report.metrics.work_by_unit, vec![2, 2, 2, 2, 2, 1, 1, 1]);
    assert_eq!(report.metrics.messages, 15);
    assert_eq!(report.metrics.omissions, 1);
    assert_eq!(report.metrics.crashes, 1);
    assert_eq!(report.metrics.recoveries, 1);
    assert_eq!(report.metrics.dead_letters, 0);

    let trace = &report.trace;

    // Fault 1 (slowdown): p1 is passive, so its gated invocations are
    // detector notices; symptom and repair are sparse but pinned.
    assert_eq!(notes(trace, "fault:slow"), vec![(11, 1)]);
    assert_eq!(notes(trace, "fault:slow:repaired"), vec![(56, 1)]);

    // Fault 2 (receive omission): exactly one suppressed delivery.
    assert_eq!(notes(trace, "fault:omit"), vec![(13, 2)]);

    // Fault 3 (crash-recovery with wipe): crash at 9, revival at
    // 9 + 40 = 49, rejoin note from the protocol's `on_recover`, then a
    // fresh activation (wiped p0 restarts from scratch).
    let (crashes, recoveries) = crashes_and_recoveries(trace);
    assert_eq!(crashes, vec![(9, 0)]);
    assert_eq!(recoveries, vec![(49, 0)]);
    assert_eq!(notes(trace, "rejoin"), vec![(49, 0)]);
    assert_eq!(notes(trace, "activate"), vec![(0, 0), (49, 0)]);
    let silence = check_recovery_silence(trace);
    assert!(silence.is_empty(), "activity during downtime: {silence:?}");

    // Termination order: the recovered worker retires first; the others
    // drain detector notices and follow.
    let mut terminations = Vec::new();
    for e in trace.events() {
        if let Event::Terminate { round, pid } = e {
            terminations.push((round.get(), pid.index()));
        }
    }
    assert_eq!(terminations, vec![(64, 0), (65, 3), (67, 2), (69, 1)]);
}
