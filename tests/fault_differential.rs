//! The fault subsystem's zero-cost guarantee, locked down differentially:
//! a [`FaultPlan`] with **zero** faults — adversary half *and* wrapper
//! half — must be invisible, producing bit-identical reports to the
//! plain engine with [`NoFailures`] on both execution planes, for every
//! protocol, across randomly drawn shapes and seeds.
//!
//! Anything the fault layer touches unconditionally (extra RNG draws,
//! queue events, metric counters, trace entries, message reordering)
//! breaks these tests — which is the point: faults must pay only when
//! injected.

use doall::sim::asynch::{run_async, AsyncConfig, AsyncProtocol};
use doall::sim::{run, FaultPlan, NoFailures, Protocol, RunConfig};
use doall::{
    AsyncProtocolA, AsyncProtocolB, Lockstep, NaiveSpread, ProtocolA, ProtocolB, ProtocolC,
    ProtocolD, ReplicateAll,
};
use proptest::prelude::*;

/// Valid Protocol A/B shapes: t a perfect square, t | n, n >= t.
fn ab_shape() -> impl Strategy<Value = (u64, u64)> {
    (1u64..=6, 1u64..=6).prop_map(|(s, k)| {
        let t = s * s;
        (t * k, t)
    })
}

/// Runs `procs` twice on the synchronous plane — plain engine vs the
/// zero-fault plan with wrapped processes — and demands bit identity.
fn assert_sync_invisible<P, F>(mk: F, n: u64, label: &str)
where
    P: Protocol + Send,
    P::Msg: Send + Sync + 'static,
    F: Fn() -> Vec<P>,
{
    let cfg = || RunConfig::new(n as usize, u64::MAX - 1).with_trace();
    let plain = run(mk(), NoFailures, cfg()).unwrap_or_else(|e| panic!("{label}: {e}"));
    let plan = FaultPlan::default();
    let faulted = run(plan.wrap(mk()), plan, cfg()).unwrap_or_else(|e| panic!("{label}: {e}"));
    assert_eq!(plain, faulted, "{label}: zero-fault run diverged from the plain engine");
}

/// The asynchronous analogue of [`assert_sync_invisible`].
fn assert_async_invisible<P, F>(mk: F, n: u64, seed: u64, label: &str)
where
    P: AsyncProtocol,
    P::Msg: 'static,
    F: Fn() -> Vec<P>,
{
    let cfg = || {
        AsyncConfig { max_delay: 7, max_events: 1_000_000, ..AsyncConfig::new(n as usize, seed) }
            .with_trace()
    };
    let plain = run_async(mk(), NoFailures, cfg()).unwrap_or_else(|e| panic!("{label}: {e}"));
    let plan = FaultPlan::default();
    let faulted =
        run_async(plan.wrap_async(mk()), plan, cfg()).unwrap_or_else(|e| panic!("{label}: {e}"));
    assert_eq!(plain, faulted, "{label}: zero-fault run diverged from the plain engine");
}

#[test]
fn zero_fault_plan_is_invisible_on_every_sync_protocol() {
    let (n, t) = (32u64, 16u64);
    assert_sync_invisible(|| ProtocolA::processes(n, t).unwrap(), n, "A");
    assert_sync_invisible(|| ProtocolB::processes(n, t).unwrap(), n, "B");
    assert_sync_invisible(|| ProtocolC::processes(16, 8).unwrap(), 16, "C");
    assert_sync_invisible(|| ProtocolC::processes_prime(16, 8).unwrap(), 16, "C'");
    assert_sync_invisible(|| ProtocolD::processes(n, t).unwrap(), n, "D");
    assert_sync_invisible(|| ReplicateAll::processes(n, t).unwrap(), n, "replicate-all");
    assert_sync_invisible(|| Lockstep::processes(n, t).unwrap(), n, "lockstep");
    assert_sync_invisible(|| NaiveSpread::processes(n, t).unwrap(), n, "naive-spread");
}

#[test]
fn zero_fault_plan_is_invisible_on_every_async_protocol() {
    let (n, t) = (32u64, 16u64);
    for seed in 0..4 {
        assert_async_invisible(|| AsyncProtocolA::processes(n, t).unwrap(), n, seed, "async A");
        assert_async_invisible(|| AsyncProtocolB::processes(n, t).unwrap(), n, seed, "async B");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Synchronous plane: zero-fault bit identity over random shapes.
    #[test]
    fn sync_zero_fault_identity_over_shapes((n, t) in ab_shape()) {
        assert_sync_invisible(|| ProtocolA::processes(n, t).unwrap(), n, "A");
        assert_sync_invisible(|| ProtocolB::processes(n, t).unwrap(), n, "B");
    }

    /// Asynchronous plane: zero-fault bit identity over random shapes and
    /// delay seeds (the RNG stream must be untouched by the fault layer).
    #[test]
    fn async_zero_fault_identity_over_shapes((n, t) in ab_shape(), seed in any::<u64>()) {
        assert_async_invisible(|| AsyncProtocolA::processes(n, t).unwrap(), n, seed, "async A");
        assert_async_invisible(|| AsyncProtocolB::processes(n, t).unwrap(), n, seed, "async B");
    }
}
