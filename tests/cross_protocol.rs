//! Integration tests spanning the whole workspace: every protocol against
//! every scenario, with the paper's bounds and structural invariants
//! checked on each run.

use doall::bounds::theorems;
use doall::sim::invariants::{
    check_activation_order, check_degraded_rate, check_no_zombie_actions, check_recovery_silence,
    check_sequential_work, check_single_active,
};
use doall::sim::{run, Event, Pid, Protocol, Report, Round, RunConfig};
use doall::workload::Scenario;
use doall::{Lockstep, NaiveSpread, ProtocolA, ProtocolB, ProtocolC, ProtocolD, ReplicateAll};

fn scenarios(t: u64) -> Vec<Scenario> {
    vec![
        Scenario::FailureFree,
        Scenario::DeadOnArrival { k: 1 },
        Scenario::DeadOnArrival { k: t / 2 },
        Scenario::DeadOnArrival { k: t - 1 },
        Scenario::TakeoverCascade { victims: t - 1 },
        Scenario::CheckpointSplit { victims: t / 2, nth_send: 2, prefix: 1 },
        Scenario::Random { seed: 1, p: 0.01, max_crashes: (t - 1) as u32 },
        Scenario::Random { seed: 99, p: 0.05, max_crashes: (t - 1) as u32 },
    ]
}

fn run_checked<P: Protocol + Send>(procs: Vec<P>, scenario: &Scenario, n: u64) -> Report
where
    P::Msg: Send + Sync + 'static,
{
    let report = run(
        procs,
        scenario.adversary::<P::Msg>(),
        RunConfig::new(n as usize, u64::MAX - 1).with_trace(),
    )
    .unwrap_or_else(|e| panic!("{}: {e}", scenario.label()));
    assert!(
        report.metrics.all_work_done(),
        "{}: missing units {:?}",
        scenario.label(),
        report.metrics.missing_units()
    );
    assert!(
        check_no_zombie_actions(&report.trace).is_empty(),
        "{}: zombie actions",
        scenario.label()
    );
    report
}

#[test]
fn protocol_a_all_scenarios() {
    let (n, t) = (32u64, 16u64);
    for scenario in scenarios(t) {
        let report = run_checked(ProtocolA::processes(n, t).unwrap(), &scenario, n);
        let b = theorems::protocol_a(n, t);
        assert!(report.metrics.work_total <= b.work, "{}", scenario.label());
        assert!(report.metrics.messages <= b.messages, "{}", scenario.label());
        assert!(report.metrics.rounds <= b.rounds, "{}", scenario.label());
        assert!(check_single_active(&report.trace).is_empty(), "{}", scenario.label());
        assert!(check_activation_order(&report.trace).is_empty(), "{}", scenario.label());
        assert!(check_sequential_work(&report.trace).is_empty(), "{}", scenario.label());
    }
}

#[test]
fn protocol_b_all_scenarios() {
    let (n, t) = (32u64, 16u64);
    for scenario in scenarios(t) {
        let report = run_checked(ProtocolB::processes(n, t).unwrap(), &scenario, n);
        let b = theorems::protocol_b(n, t);
        assert!(report.metrics.work_total <= b.work, "{}", scenario.label());
        assert!(report.metrics.messages <= b.messages, "{}", scenario.label());
        assert!(report.metrics.rounds <= b.rounds, "{}", scenario.label());
        assert!(check_single_active(&report.trace).is_empty(), "{}", scenario.label());
        assert!(check_activation_order(&report.trace).is_empty(), "{}", scenario.label());
    }
}

#[test]
fn protocol_c_all_scenarios() {
    let (n, t) = (16u64, 8u64); // exponential deadlines: keep n + t small
    for scenario in scenarios(t) {
        let report = run_checked(ProtocolC::processes(n, t).unwrap(), &scenario, n);
        let b = theorems::protocol_c(n, t);
        assert!(report.metrics.work_total <= b.work, "{}", scenario.label());
        assert!(report.metrics.messages <= b.messages, "{}", scenario.label());
        assert!(check_single_active(&report.trace).is_empty(), "{}", scenario.label());
        assert!(check_sequential_work(&report.trace).is_empty(), "{}", scenario.label());
    }
}

#[test]
fn protocol_c_prime_all_scenarios() {
    let (n, t) = (16u64, 8u64);
    for scenario in scenarios(t) {
        let report = run_checked(ProtocolC::processes_prime(n, t).unwrap(), &scenario, n);
        let b = theorems::protocol_c_prime(n, t);
        assert!(report.metrics.work_total <= b.work, "{}", scenario.label());
        assert!(report.metrics.messages <= b.messages, "{}", scenario.label());
        assert!(check_single_active(&report.trace).is_empty(), "{}", scenario.label());
    }
}

#[test]
fn protocol_d_all_scenarios() {
    let (n, t) = (32u64, 16u64);
    for scenario in scenarios(t) {
        let report = run_checked(ProtocolD::processes(n, t).unwrap(), &scenario, n);
        let f = u64::from(report.metrics.crashes);
        // The fallback case is the weaker envelope; it covers both.
        let b = theorems::protocol_d_fallback(n, t, f);
        assert!(report.metrics.work_total <= b.work, "{}", scenario.label());
        assert!(report.metrics.messages <= b.messages, "{}", scenario.label());
        assert!(report.metrics.rounds <= b.rounds, "{}", scenario.label());
    }
}

#[test]
fn baselines_all_scenarios() {
    let (n, t) = (32u64, 16u64);
    for scenario in scenarios(t) {
        run_checked(ReplicateAll::processes(n, t).unwrap(), &scenario, n);
        run_checked(Lockstep::processes(n, t).unwrap(), &scenario, n);
        run_checked(NaiveSpread::processes(n, t).unwrap(), &scenario, n);
    }
}

/// §2.3's whole point: under the worst dead-on-arrival pattern, Protocol B
/// finishes in O(n + t) rounds while Protocol A needs Θ(nt + t²).
#[test]
fn protocol_b_beats_a_on_takeover_latency() {
    let (n, t) = (64u64, 64u64);
    let scenario = Scenario::DeadOnArrival { k: t - 1 };
    let a = run_checked(ProtocolA::processes(n, t).unwrap(), &scenario, n);
    let b = run_checked(ProtocolB::processes(n, t).unwrap(), &scenario, n);
    assert!(
        b.metrics.rounds.get() * 10 < a.metrics.rounds.get(),
        "B ({}) should be an order of magnitude faster than A ({})",
        b.metrics.rounds,
        a.metrics.rounds
    );
}

/// §6: in the failure-free case Protocol D takes n/t + 2 rounds — the
/// sequential protocols can never beat n rounds.
#[test]
fn protocol_d_is_the_time_winner_without_failures() {
    let (n, t) = (64u64, 16u64);
    let scenario = Scenario::FailureFree;
    let d = run_checked(ProtocolD::processes(n, t).unwrap(), &scenario, n);
    let b = run_checked(ProtocolB::processes(n, t).unwrap(), &scenario, n);
    assert_eq!(d.metrics.rounds, n / t + 2);
    assert!(d.metrics.rounds.get() < b.metrics.rounds.get() / 10);
}

/// Work-optimality separates the suite from replicate-all, and
/// message-optimality from lockstep, on the same workload.
#[test]
fn effort_ranking_matches_section_1() {
    let (n, t) = (64u64, 16u64);
    let scenario = Scenario::Random { seed: 5, p: 0.02, max_crashes: (t - 1) as u32 };
    let rep = run_checked(ReplicateAll::processes(n, t).unwrap(), &scenario, n);
    let lock = run_checked(Lockstep::processes(n, t).unwrap(), &scenario, n);
    let b = run_checked(ProtocolB::processes(n, t).unwrap(), &scenario, n);
    assert!(b.metrics.effort() < rep.metrics.effort());
    assert!(b.metrics.effort() < lock.metrics.effort());
}

/// The asynchronous Protocol A (§2.1) does the same work and sends the
/// same messages as the synchronous one in the failure-free case,
/// regardless of message delays.
#[test]
fn async_protocol_a_matches_synchronous_counts() {
    use doall::sim::asynch::{run_async, AsyncConfig};
    use doall::AsyncProtocolA;

    let (n, t) = (32u64, 16u64);
    let sync_report = run_checked(ProtocolA::processes(n, t).unwrap(), &Scenario::FailureFree, n);
    for seed in 0..5 {
        let cfg = AsyncConfig { max_delay: 11, ..AsyncConfig::new(n as usize, seed) };
        let async_report =
            run_async(AsyncProtocolA::processes(n, t).unwrap(), doall::sim::NoFailures, cfg)
                .unwrap();
        assert!(async_report.metrics.all_work_done());
        assert_eq!(async_report.metrics.work_total, sync_report.metrics.work_total);
        assert_eq!(async_report.metrics.messages, sync_report.metrics.messages);
    }
}

// ---- Beyond fail-stop: recovery, slowdown, and omission faults ----

/// The fault scenarios every protocol must survive: crash-recovery (stale
/// and wiped, low and mid pid), degraded mode, and both omission sides.
fn fault_scenarios(t: u64) -> Vec<Scenario> {
    vec![
        Scenario::CrashRecovery { pid: 0, round: 3, downtime: 5, wipe: false },
        Scenario::CrashRecovery { pid: 0, round: 2, downtime: 8, wipe: true },
        Scenario::CrashRecovery { pid: t / 2, round: 4, downtime: 6, wipe: false },
        Scenario::Slowdown { pid: 0, from: 2, factor: 4, rounds: 16 },
        Scenario::Slowdown { pid: 1, from: 1, factor: 2, rounds: 8 },
        Scenario::Omission { pid: 0, send: true, from: 1, rounds: 6 },
        Scenario::Omission { pid: 1, send: false, from: 2, rounds: 6 },
    ]
}

/// Runs a fault scenario (adversary half + wrapper half) and checks the
/// beyond-fail-stop safety contract: every task still gets performed, no
/// task completed before the fault is lost from the final report, a
/// recovering process never acts during its downtime window, and a
/// degraded process never steps faster than its rate.
fn run_faulted<P: Protocol + Send>(procs: Vec<P>, scenario: &Scenario, n: u64) -> Report
where
    P::Msg: Send + Sync + 'static,
{
    let plan = scenario.fault_plan();
    let report = run(
        plan.wrap(procs),
        scenario.adversary::<P::Msg>(),
        RunConfig::new(n as usize, u64::MAX - 1).with_trace(),
    )
    .unwrap_or_else(|e| panic!("{}: {e}", scenario.label()));
    assert!(
        report.metrics.all_work_done(),
        "{}: missing units {:?}",
        scenario.label(),
        report.metrics.missing_units()
    );
    // No completed task reported lost: every unit the trace shows
    // performed — including before a crash or inside a fault window —
    // is still present in the final coverage.
    for event in report.trace.events() {
        if let Event::Work { unit, .. } = event {
            assert!(
                report.metrics.work_by_unit[unit.get() - 1] > 0,
                "{}: unit {unit} performed but reported lost",
                scenario.label()
            );
        }
    }
    let silence = check_recovery_silence(&report.trace);
    assert!(silence.is_empty(), "{}: {silence:?}", scenario.label());
    if let Scenario::Slowdown { pid, from, factor, rounds } = *scenario {
        let rate = check_degraded_rate(
            &report.trace,
            Pid::new(pid as usize),
            Round::from(from),
            Round::from(from + rounds),
            factor,
        );
        assert!(rate.is_empty(), "{}: {rate:?}", scenario.label());
    }
    report
}

#[test]
fn protocol_a_fault_scenarios() {
    let (n, t) = (32u64, 16u64);
    for scenario in fault_scenarios(t) {
        run_faulted(ProtocolA::processes(n, t).unwrap(), &scenario, n);
    }
}

#[test]
fn protocol_b_fault_scenarios() {
    let (n, t) = (32u64, 16u64);
    for scenario in fault_scenarios(t) {
        run_faulted(ProtocolB::processes(n, t).unwrap(), &scenario, n);
    }
}

#[test]
fn protocol_c_fault_scenarios() {
    let (n, t) = (16u64, 8u64);
    for scenario in fault_scenarios(t) {
        run_faulted(ProtocolC::processes(n, t).unwrap(), &scenario, n);
        run_faulted(ProtocolC::processes_prime(n, t).unwrap(), &scenario, n);
    }
}

#[test]
fn protocol_d_fault_scenarios() {
    let (n, t) = (32u64, 16u64);
    for scenario in fault_scenarios(t) {
        run_faulted(ProtocolD::processes(n, t).unwrap(), &scenario, n);
    }
}

#[test]
fn baselines_fault_scenarios() {
    let (n, t) = (32u64, 16u64);
    for scenario in fault_scenarios(t) {
        run_faulted(ReplicateAll::processes(n, t).unwrap(), &scenario, n);
        run_faulted(Lockstep::processes(n, t).unwrap(), &scenario, n);
        run_faulted(NaiveSpread::processes(n, t).unwrap(), &scenario, n);
    }
}

/// The asynchronous plane under the same fault vocabulary: recovery,
/// quarter-rate degradation, and omission windows, with the downtime
/// silence checked on the trace.
#[test]
fn async_protocols_fault_scenarios() {
    use doall::sim::asynch::{run_async, AsyncConfig};
    use doall::{AsyncProtocolA, AsyncProtocolB};

    let (n, t) = (32u64, 16u64);
    let scenarios = vec![
        Scenario::CrashRecovery { pid: 0, round: 10, downtime: 30, wipe: false },
        Scenario::CrashRecovery { pid: 0, round: 8, downtime: 50, wipe: true },
        Scenario::Slowdown { pid: 0, from: 2, factor: 4, rounds: 8 },
        Scenario::Omission { pid: 0, send: true, from: 5, rounds: 30 },
        Scenario::Omission { pid: 1, send: false, from: 5, rounds: 30 },
    ];
    for scenario in scenarios {
        for seed in 0..3 {
            let cfg = AsyncConfig {
                max_delay: 7,
                max_events: 1_000_000,
                ..AsyncConfig::new(n as usize, seed)
            }
            .with_trace();
            let plan = scenario.fault_plan();
            let label = scenario.label();
            let report_a = run_async(
                plan.wrap_async(AsyncProtocolA::processes(n, t).unwrap()),
                scenario.async_adversary(),
                cfg.clone(),
            )
            .unwrap_or_else(|e| panic!("{label} seed {seed} (A): {e}"));
            assert!(report_a.metrics.all_work_done(), "{label} seed {seed} (A)");
            let silence = check_recovery_silence(&report_a.trace);
            assert!(silence.is_empty(), "{label} seed {seed} (A): {silence:?}");
            let report_b = run_async(
                plan.wrap_async(AsyncProtocolB::processes(n, t).unwrap()),
                scenario.async_adversary(),
                cfg,
            )
            .unwrap_or_else(|e| panic!("{label} seed {seed} (B): {e}"));
            assert!(report_b.metrics.all_work_done(), "{label} seed {seed} (B)");
            let silence = check_recovery_silence(&report_b.trace);
            assert!(silence.is_empty(), "{label} seed {seed} (B): {silence:?}");
        }
    }
}

/// Determinism: identical configurations and scenarios yield identical
/// metrics — the property that makes every other test meaningful.
#[test]
fn runs_are_reproducible() {
    let (n, t) = (32u64, 16u64);
    let scenario = Scenario::Random { seed: 11, p: 0.03, max_crashes: (t - 1) as u32 };
    let r1 = run_checked(ProtocolB::processes(n, t).unwrap(), &scenario, n);
    let r2 = run_checked(ProtocolB::processes(n, t).unwrap(), &scenario, n);
    assert_eq!(r1.metrics, r2.metrics);
    assert_eq!(r1.trace, r2.trace);
}
