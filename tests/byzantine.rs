//! Property and scenario tests for the §5 Byzantine-agreement reduction:
//! agreement and validity must hold under every crash schedule with at
//! most `t` failures, for every engine.

use doall::agreement::{BaSystem, Engine, FloodingBa};
use doall::bounds::theorems;
use doall::sim::{CrashSchedule, CrashSpec, NoFailures, Pid, RandomCrashes};
use proptest::prelude::*;

#[test]
fn ba_via_every_engine_is_correct_failure_free() {
    // Engine shape constraints: t+1 square for A/B, power of two for C.
    for (engine, t) in [(Engine::A, 8), (Engine::B, 8), (Engine::C, 7)] {
        let outcome =
            BaSystem::new(32, t, engine).unwrap().general_value(3).run(NoFailures).unwrap();
        assert!(outcome.agreement(), "{engine:?}");
        assert!(outcome.validity(), "{engine:?}");
        assert_eq!(outcome.decided_count(), 32, "{engine:?}");
    }
}

#[test]
fn ba_message_complexity_ranks_as_in_section_5() {
    let (n, t) = (128u64, 8u64);
    let via_b = BaSystem::new(n, t, Engine::B)
        .unwrap()
        .general_value(1)
        .run(NoFailures)
        .unwrap()
        .metrics
        .messages;
    let via_c = BaSystem::new(n, 7, Engine::C)
        .unwrap()
        .general_value(1)
        .run(NoFailures)
        .unwrap()
        .metrics
        .messages;
    let (_, flood) = FloodingBa::run_system(n, t, 1, NoFailures).unwrap();
    assert!(via_b <= theorems::ba_via_b_messages(n, t));
    assert!(via_c <= theorems::ba_via_c_messages(n, 7));
    assert!(via_b < flood.messages / 10, "reduction beats flooding: {via_b} vs {}", flood.messages);
    assert!(via_c < flood.messages / 10);
}

#[test]
fn ba_survives_general_crash_at_every_stage_1_prefix() {
    // The general reaches only the first k senders before dying: agreement
    // must hold for every k.
    let (n, t) = (24u64, 3u64);
    for k in 0..=t as usize {
        let adv = CrashSchedule::new().crash_at(Pid::new(0), 1, CrashSpec::prefix(k));
        let outcome = BaSystem::new(n, t, Engine::B).unwrap().general_value(9).run(adv).unwrap();
        assert!(outcome.agreement(), "prefix {k}: {:?}", outcome.decisions);
        assert_eq!(outcome.decided_count() as u64, n - 1, "prefix {k}");
    }
}

#[test]
fn ba_survives_active_sender_crashes_at_every_cut_point() {
    use doall::sim::{Trigger, TriggerAdversary, TriggerRule};
    let (n, t) = (16u64, 3u64);
    for nth in 1..=10u64 {
        for engine in [Engine::B, Engine::C] {
            let adv = TriggerAdversary::new(vec![TriggerRule {
                trigger: Trigger::NthSendRoundBy { pid: Pid::new(0), nth },
                target: None,
                spec: CrashSpec::prefix(1),
            }]);
            let outcome = BaSystem::new(n, t, engine).unwrap().general_value(6).run(adv).unwrap();
            assert!(outcome.agreement(), "{engine:?} cut {nth}: {:?}", outcome.decisions);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Agreement holds under random crash storms for the B engine.
    #[test]
    fn ba_agreement_under_random_storms(seed in any::<u64>(), p in 0.0f64..0.05) {
        let (n, t) = (24u64, 3u64);
        let adv = RandomCrashes::new(seed, p, t as u32);
        let outcome = BaSystem::new(n, t, Engine::B)
            .unwrap()
            .general_value(13)
            .run(adv)
            .unwrap();
        prop_assert!(outcome.agreement(), "{:?}", outcome.decisions);
        prop_assert!(outcome.validity());
        // At most t crashes -> at least n - t deciders.
        prop_assert!(outcome.decided_count() as u64 >= n - t);
    }

    /// Flooding also agrees (it had better, at Θ(n²t) messages).
    #[test]
    fn flooding_agreement_under_random_storms(seed in any::<u64>(), p in 0.0f64..0.05) {
        let (n, t) = (16u64, 4u64);
        let adv = RandomCrashes::new(seed, p, t as u32);
        let (decisions, _) = FloodingBa::run_system(n, t, 2, adv).unwrap();
        let decided: Vec<u64> = decisions.iter().flatten().copied().collect();
        prop_assert!(decided.windows(2).all(|w| w[0] == w[1]), "{decisions:?}");
    }
}
