//! Differential property tests for the asynchronous op-arena engine.
//!
//! 1. [`doall::sim::asynch::run_async`] (payload stored once in the op
//!    arena, calendar-queue scheduling, batched zero-copy inboxes) must
//!    produce **bit-identical** [`AsyncReport`]s — metrics, statuses,
//!    notes, and full traces — to
//!    [`doall::sim::asynch::reference::run_async_reference`] (payload
//!    cloned per recipient at scheduling, plain binary heap) over random
//!    send/delay/crash patterns. Drawn `max_delay`s straddle the calendar
//!    queue's horizon, so both queue representations are exercised.
//! 2. Failure-free asynchronous runs of Protocols A and B must report
//!    exactly the synchronous work and message counts over a small grid —
//!    the §2.1 claim that the bounds carry over.

use doall::sim::asynch::{
    run_async, AsyncConfig, AsyncCrashSchedule, AsyncEffects, AsyncProtocol, DelayDist,
};
use doall::sim::{Classify, CrashSpec, Inbox, NoFailures, Pid, Unit};
use doall::{AsyncProtocolA, AsyncProtocolB, ProtocolA, ProtocolB};
use proptest::prelude::*;

/// A payload with two metric classes, so `messages_by_class` is exercised.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Chat(u64);

impl Classify for Chat {
    fn class(&self) -> &'static str {
        if self.0.is_multiple_of(2) {
            "even"
        } else {
            "odd"
        }
    }
}

/// SplitMix64: the per-(seed, pid, invocation) decision hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A scripted chatterbox for the event-driven plane: self-drives through
/// `actions` tick-chained steps, each drawn from a deterministic hash —
/// some mix of work units (possibly several per handler), a unicast, one
/// or two span multicasts (possibly addressing retired pids, to exercise
/// dead letters), and a note; the final action terminates. Echoes the
/// first few received messages (reactive sends from batched inboxes) and
/// reacts to a bounded number of retirement notices, so every handler kind
/// feeds the comparison.
#[derive(Clone)]
struct AsyncChatter {
    me: usize,
    t: usize,
    n: usize,
    seed: u64,
    actions: u64,
    acted: u64,
    echoes_left: u32,
    checksum: u64,
}

impl AsyncChatter {
    fn procs(t: usize, n: usize, seed: u64) -> Vec<AsyncChatter> {
        (0..t)
            .map(|me| {
                let h = mix(seed ^ (me as u64).wrapping_mul(0xA24B_AED4_963E_E407));
                AsyncChatter {
                    me,
                    t,
                    n,
                    seed,
                    actions: 1 + (h >> 48) % 8,
                    acted: 0,
                    echoes_left: (h >> 16) as u32 % 4,
                    checksum: 0,
                }
            })
            .collect()
    }

    fn act(&mut self, eff: &mut AsyncEffects<Chat>) {
        if self.acted >= self.actions {
            return;
        }
        self.acted += 1;
        let h = mix(self.seed ^ ((self.me as u64) << 32) ^ self.acted);
        if h.is_multiple_of(3) {
            eff.perform(Unit::new(1 + (h >> 8) as usize % self.n));
            if h.is_multiple_of(9) {
                // Asynchronous handlers may perform several units at once.
                eff.perform(Unit::new(1 + (h >> 12) as usize % self.n));
            }
        }
        match (h >> 16) % 4 {
            0 => {
                let to = Pid::new((h >> 24) as usize % self.t);
                eff.send(to, Chat(h >> 40));
            }
            1 => {
                let lo = (h >> 24) as usize % self.t;
                let hi = lo + 1 + (h >> 34) as usize % (self.t - lo);
                eff.multicast(lo..hi, Chat(h >> 40));
            }
            2 => {
                // Two ops in one handler: a span and a unicast.
                let lo = (h >> 24) as usize % self.t;
                eff.multicast(lo..self.t, Chat(h >> 40));
                eff.send(Pid::new((h >> 45) as usize % self.t), Chat(h >> 50));
            }
            _ => eff.note("mumble"),
        }
        if self.acted == self.actions {
            eff.terminate();
        } else {
            eff.continue_later();
        }
    }
}

impl AsyncProtocol for AsyncChatter {
    type Msg = Chat;

    fn on_start(&mut self, eff: &mut AsyncEffects<Chat>) {
        self.act(eff);
    }

    fn on_messages(&mut self, inbox: Inbox<'_, Chat>, eff: &mut AsyncEffects<Chat>) {
        for (from, msg) in inbox.iter() {
            self.checksum = mix(self.checksum ^ (from.index() as u64) ^ msg.0);
            if self.echoes_left > 0 && self.acted < self.actions {
                self.echoes_left -= 1;
                eff.send(from, Chat(self.checksum));
            }
        }
    }

    fn on_retirement(&mut self, retired: Pid, eff: &mut AsyncEffects<Chat>) {
        self.checksum = mix(self.checksum ^ 0xDEAD ^ retired.index() as u64);
        if self.checksum.is_multiple_of(5) {
            eff.note("observed_retirement");
        }
    }

    fn on_tick(&mut self, eff: &mut AsyncEffects<Chat>) {
        self.act(eff);
    }
}

/// A random invocation-indexed crash schedule: up to 5 crashes with every
/// delivery-filter shape (silent, after-round, prefix, arbitrary subset).
fn crash_schedule(t: usize, seed: u64) -> AsyncCrashSchedule {
    let mut sched = AsyncCrashSchedule::new();
    let crashes = mix(seed) % 6;
    for c in 0..crashes {
        let h = mix(seed ^ c.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let pid = Pid::new(h as usize % t);
        let invocation = 1 + (h >> 16) % 12;
        let spec = match (h >> 32) % 4 {
            0 => CrashSpec::silent(),
            1 => CrashSpec::after_round(),
            2 => CrashSpec::prefix((h >> 40) as usize % (t + 1)),
            _ => {
                let members = (0..t).filter(|&p| (h >> (p % 24)) & 1 == 1).map(Pid::new);
                CrashSpec::subset(members)
            }
        };
        sched = sched.crash_at(pid, invocation, spec);
    }
    sched
}

fn dist_of(raw: u8) -> DelayDist {
    match raw % 3 {
        0 => DelayDist::Uniform,
        1 => DelayDist::Fixed,
        _ => DelayDist::Bimodal,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// The op-arena engine and the per-recipient-clone reference scheduler
    /// agree on the complete AsyncReport: every metric (totals, per class,
    /// dead letters, per-unit multiplicities, final timestamp), statuses,
    /// notes, and the full recorded trace.
    #[test]
    fn arena_engine_matches_per_recipient_reference(
        t in 1usize..=10,
        n in 1usize..=12,
        // Straddles the calendar horizon (64): small draws use the
        // bucketed calendar, large ones the binary-heap fallback.
        max_delay in 1u64..=96,
        raw_dist in 0u8..=2,
        seed in any::<u64>(),
    ) {
        let cfg = AsyncConfig {
            n,
            seed,
            max_delay,
            delay: dist_of(raw_dist),
            max_events: 1_000_000,
            record_trace: true,
            stall_window: None,
        };
        let sched = crash_schedule(t, seed);
        let fast = run_async(AsyncChatter::procs(t, n, seed), sched.clone(), cfg.clone())
            .expect("chatters always retire");
        let reference = doall::sim::asynch::reference::run_async_reference(
            AsyncChatter::procs(t, n, seed),
            sched,
            cfg,
        )
        .expect("reference run must complete identically");
        prop_assert_eq!(&fast.metrics, &reference.metrics);
        prop_assert_eq!(&fast.terminated, &reference.terminated);
        prop_assert_eq!(&fast.crashed, &reference.crashed);
        prop_assert_eq!(&fast.notes, &reference.notes);
        prop_assert_eq!(&fast.trace, &reference.trace);
    }

    /// Sanity on the generator itself: drawn systems really do send
    /// messages and suffer crashes (the comparison is not vacuous).
    #[test]
    fn async_chatter_runs_produce_traffic(seed in any::<u64>()) {
        let report = run_async(
            AsyncChatter::procs(8, 8, seed),
            crash_schedule(8, seed),
            AsyncConfig { max_delay: 6, ..AsyncConfig::new(8, seed) },
        ).expect("chatters always retire");
        prop_assert_eq!(
            u64::from(report.metrics.crashes + report.metrics.terminations),
            8u64
        );
    }
}

/// §2.1's carried-over bounds, sharpened to equality where equality is a
/// theorem: under a **fixed** delay (every hop takes the same time), a
/// retiring process's final broadcast and the detector's notice about its
/// retirement arrive at the same timestamp with the message batched first,
/// so no passive process ever activates on stale knowledge — the
/// failure-free asynchronous Protocols A and B then perform exactly the
/// synchronous work and send exactly the synchronous messages. Under
/// skewed delay distributions a notice *can* legitimately outrun the
/// terminal message (the observer re-activates and redoes a tail of the
/// schedule), so there the Theorem 2.3 bounds — not equality — are the
/// carried-over claim.
#[test]
fn failure_free_async_equals_sync_for_a_and_b() {
    let grid = [(16u64, 16u64), (32, 16), (64, 16), (36, 36)];
    for (n, t) in grid {
        let sync_a = doall::sim::run(
            ProtocolA::processes(n, t).unwrap(),
            NoFailures,
            doall::sim::RunConfig::new(n as usize, u64::MAX - 1),
        )
        .unwrap();
        let sync_b = doall::sim::run(
            ProtocolB::processes(n, t).unwrap(),
            NoFailures,
            doall::sim::RunConfig::new(n as usize, u64::MAX - 1),
        )
        .unwrap();
        // Exact equality under fixed delays, for several hop costs.
        for max_delay in [1u64, 3, 11] {
            let cfg = AsyncConfig::new(n as usize, 42).with_delay(DelayDist::Fixed, max_delay);
            let async_a =
                run_async(AsyncProtocolA::processes(n, t).unwrap(), NoFailures, cfg.clone())
                    .unwrap();
            let async_b =
                run_async(AsyncProtocolB::processes(n, t).unwrap(), NoFailures, cfg).unwrap();
            for (label, sync, asynch) in [("A", &sync_a, &async_a), ("B", &sync_b, &async_b)] {
                assert!(asynch.metrics.all_work_done(), "{label}({n},{t},fixed {max_delay})");
                assert_eq!(
                    asynch.metrics.work_total, sync.metrics.work_total,
                    "{label}({n},{t},fixed {max_delay}): async work drifted from sync"
                );
                assert_eq!(
                    asynch.metrics.messages, sync.metrics.messages,
                    "{label}({n},{t},fixed {max_delay}): async messages drifted from sync"
                );
                assert_eq!(
                    asynch.metrics.messages_by_class, sync.metrics.messages_by_class,
                    "{label}({n},{t},fixed {max_delay})"
                );
            }
        }
        // Carried-over bounds under adversarial delay shapes.
        let bound = doall::bounds::theorems::protocol_a(n, t);
        for (dist, max_delay, seed) in [
            (DelayDist::Uniform, 7, 0u64),
            (DelayDist::Uniform, 23, 5),
            (DelayDist::Bimodal, 16, 1),
            (DelayDist::Bimodal, 48, 9),
        ] {
            let cfg = AsyncConfig::new(n as usize, seed).with_delay(dist, max_delay);
            let async_a =
                run_async(AsyncProtocolA::processes(n, t).unwrap(), NoFailures, cfg.clone())
                    .unwrap();
            let async_b =
                run_async(AsyncProtocolB::processes(n, t).unwrap(), NoFailures, cfg).unwrap();
            for (label, asynch) in [("A", &async_a), ("B", &async_b)] {
                assert!(asynch.metrics.all_work_done(), "{label}({n},{t},{dist:?})");
                assert!(
                    asynch.metrics.work_total <= bound.work,
                    "{label}({n},{t},{dist:?}): work {} over 3n bound {}",
                    asynch.metrics.work_total,
                    bound.work
                );
                assert!(
                    asynch.metrics.messages <= bound.messages,
                    "{label}({n},{t},{dist:?}): messages {} over 9t*sqrt(t) bound {}",
                    asynch.metrics.messages,
                    bound.messages
                );
            }
        }
    }
}
