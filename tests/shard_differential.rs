//! Differential test for sharded parallel stepping: for every shard
//! count, the engine must produce a [`Report`] identical to the
//! sequential engine's — metrics (totals, per-class counts, dead
//! letters, per-unit work multiplicities), the full recorded trace, and
//! final statuses. Sharding is purely a wall-clock knob (DESIGN.md
//! §2.12): shards step disjoint pid ranges into private effect lanes,
//! and the merge applies them in pid order, which is exactly the
//! sequential visitation order.
//!
//! Shard counts cover uneven splits (3, 7), a power of two (2, 16), and
//! more shards than some fixtures have processes (t = 16 with 16 shards
//! leaves shards with one pid; protocols with t < 16 force empty-tail
//! handling).

use doall::sim::{run, Protocol, Report, Round, RunConfig};
use doall::workload::Scenario;
use doall::{Lockstep, ProtocolA, ProtocolB, ProtocolC, ProtocolD};

const SHARDS: [usize; 4] = [2, 3, 7, 16];

/// Runs the same (procs, scenario) pair sequentially and at every shard
/// count, asserting full-Report equality (trace recording on).
fn assert_shard_invariant<P>(build: impl Fn() -> Vec<P>, scenario: &Scenario, n: u64)
where
    P: Protocol + Send,
    P::Msg: Send + Sync + 'static,
{
    let cfg =
        |shards: usize| RunConfig::new(n as usize, Round::MAX).with_trace().with_shards(shards);
    let sequential: Report = run(build(), scenario.adversary::<P::Msg>(), cfg(1))
        .unwrap_or_else(|e| panic!("sequential run failed under {}: {e}", scenario.label()));
    for shards in SHARDS {
        let sharded =
            run(build(), scenario.adversary::<P::Msg>(), cfg(shards)).unwrap_or_else(|e| {
                panic!("{shards}-shard run failed under {}: {e}", scenario.label())
            });
        assert_eq!(
            sequential,
            sharded,
            "{shards}-shard report diverged from sequential under {}",
            scenario.label()
        );
    }
}

#[test]
fn protocol_a_matches_sequential_across_shard_counts() {
    for scenario in [
        Scenario::FailureFree,
        Scenario::DeadOnArrival { k: 15 },
        Scenario::TakeoverCascade { victims: 15 },
        Scenario::CheckpointSplit { victims: 8, nth_send: 2, prefix: 1 },
    ] {
        assert_shard_invariant(|| ProtocolA::processes(64, 16).unwrap(), &scenario, 64);
    }
}

#[test]
fn protocol_b_matches_sequential_across_shard_counts() {
    for scenario in [
        Scenario::FailureFree,
        Scenario::MassExtinction { from: 1, k: 15, round: 1 },
        Scenario::TakeoverCascade { victims: 15 },
    ] {
        assert_shard_invariant(|| ProtocolB::processes(64, 16).unwrap(), &scenario, 64);
    }
}

#[test]
fn protocol_d_matches_sequential_across_shard_counts() {
    for scenario in [Scenario::FailureFree, Scenario::MassExtinction { from: 2, k: 6, round: 2 }] {
        assert_shard_invariant(|| ProtocolD::processes(64, 8).unwrap(), &scenario, 64);
        assert_shard_invariant(
            || ProtocolD::processes_with_coordinator(64, 8).unwrap(),
            &scenario,
            64,
        );
    }
}

/// Protocol C's takeover deadlines drive the engine's sparse
/// fast-forward: the round clock jumps across huge idle gaps, which the
/// sharded stepper must cross at exactly the same rounds.
#[test]
fn fast_forward_heavy_c_matches_sequential_across_shard_counts() {
    assert_shard_invariant(|| ProtocolC::processes(16, 16).unwrap(), &Scenario::FailureFree, 16);
    assert_shard_invariant(
        || ProtocolC::processes(8, 16).unwrap(),
        &Scenario::DeadOnArrival { k: 15 },
        8,
    );
    assert_shard_invariant(
        || ProtocolC::processes(16, 16).unwrap(),
        &Scenario::DeepIdle { k: 15, round: Round::new(1 << 40) },
        16,
    );
}

/// Lockstep broadcasts after every unit — the densest message plane the
/// baselines offer, so the per-shard effect lanes carry real load.
#[test]
fn lockstep_broadcast_storm_matches_sequential_across_shard_counts() {
    assert_shard_invariant(|| Lockstep::processes(128, 16).unwrap(), &Scenario::FailureFree, 128);
}

/// The trigger-based random adversary consumes its RNG stream in
/// interception order; the sharded engine intercepts on the merge thread
/// in pid order, so the stream — and therefore who crashes — must be
/// bit-identical at every shard count.
#[test]
fn random_crashes_match_sequential_across_shard_counts() {
    for seed in 0..8u64 {
        let scenario = Scenario::Random { seed, p: 0.05, max_crashes: 15 };
        assert_shard_invariant(|| ProtocolB::processes(64, 16).unwrap(), &scenario, 64);
    }
}

/// Beyond fail-stop: crash-recovery (the revival queue) and slowdown
/// (fault-plan-wrapped processes) under sharded stepping.
#[test]
fn fault_models_match_sequential_across_shard_counts() {
    let recover = Scenario::CrashRecovery { pid: 0, round: 3, downtime: 16, wipe: false };
    assert_shard_invariant(|| ProtocolB::processes(64, 16).unwrap(), &recover, 64);

    let slow = Scenario::Slowdown { pid: 0, from: 2, factor: 4, rounds: 32 };
    assert_shard_invariant(
        || slow.fault_plan().wrap(ProtocolB::processes(64, 16).unwrap()),
        &slow,
        64,
    );

    let omit = Scenario::Omission { pid: 0, send: true, from: 1, rounds: 8 };
    assert_shard_invariant(|| ProtocolB::processes(64, 16).unwrap(), &omit, 64);
}
