//! Differential test for sharded parallel stepping: for every shard
//! count, the engine must produce a [`Report`] identical to the
//! sequential engine's — metrics (totals, per-class counts, dead
//! letters, per-unit work multiplicities), the full recorded trace, and
//! final statuses. Sharding is purely a wall-clock knob (DESIGN.md
//! §2.12): shards step disjoint pid ranges into private effect lanes,
//! and the merge applies them in pid order, which is exactly the
//! sequential visitation order.
//!
//! Shard counts cover uneven splits (3, 5, 7, 13), powers of two
//! (2, 16, 32), and more shards than every fixture has processes (t = 16
//! with 32 shards leaves empty tail shards; 16 shards leaves one pid per
//! shard).
//!
//! Beyond full-Report equality, the proptest at the bottom pins the
//! *inbox-order* contract of the two-phase effect exchange (DESIGN.md
//! §2.13): each recipient must observe exactly the `(sender, payload)`
//! sequence the sequential engine delivers, in the same order, at every
//! shard count — the parallel CSR build and the lane-bucketed route
//! exchange may never reorder same-recipient traffic.

use doall::sim::{
    run, run_returning, Classify, CrashSchedule, CrashSpec, Effects, Inbox, NoFailures, Pid,
    Protocol, Report, Round, RunConfig, Unit,
};
use doall::workload::Scenario;
use doall::{Lockstep, ProtocolA, ProtocolB, ProtocolC, ProtocolD};
use proptest::prelude::*;

const SHARDS: [usize; 7] = [2, 3, 5, 7, 13, 16, 32];

/// Runs the same (procs, scenario) pair sequentially and at every shard
/// count, asserting full-Report equality (trace recording on).
fn assert_shard_invariant<P>(build: impl Fn() -> Vec<P>, scenario: &Scenario, n: u64)
where
    P: Protocol + Send,
    P::Msg: Send + Sync + 'static,
{
    let cfg =
        |shards: usize| RunConfig::new(n as usize, Round::MAX).with_trace().with_shards(shards);
    let sequential: Report = run(build(), scenario.adversary::<P::Msg>(), cfg(1))
        .unwrap_or_else(|e| panic!("sequential run failed under {}: {e}", scenario.label()));
    for shards in SHARDS {
        let sharded =
            run(build(), scenario.adversary::<P::Msg>(), cfg(shards)).unwrap_or_else(|e| {
                panic!("{shards}-shard run failed under {}: {e}", scenario.label())
            });
        assert_eq!(
            sequential,
            sharded,
            "{shards}-shard report diverged from sequential under {}",
            scenario.label()
        );
    }
}

#[test]
fn protocol_a_matches_sequential_across_shard_counts() {
    for scenario in [
        Scenario::FailureFree,
        Scenario::DeadOnArrival { k: 15 },
        Scenario::TakeoverCascade { victims: 15 },
        Scenario::CheckpointSplit { victims: 8, nth_send: 2, prefix: 1 },
    ] {
        assert_shard_invariant(|| ProtocolA::processes(64, 16).unwrap(), &scenario, 64);
    }
}

#[test]
fn protocol_b_matches_sequential_across_shard_counts() {
    for scenario in [
        Scenario::FailureFree,
        Scenario::MassExtinction { from: 1, k: 15, round: 1 },
        Scenario::TakeoverCascade { victims: 15 },
    ] {
        assert_shard_invariant(|| ProtocolB::processes(64, 16).unwrap(), &scenario, 64);
    }
}

#[test]
fn protocol_d_matches_sequential_across_shard_counts() {
    for scenario in [Scenario::FailureFree, Scenario::MassExtinction { from: 2, k: 6, round: 2 }] {
        assert_shard_invariant(|| ProtocolD::processes(64, 8).unwrap(), &scenario, 64);
        assert_shard_invariant(
            || ProtocolD::processes_with_coordinator(64, 8).unwrap(),
            &scenario,
            64,
        );
    }
}

/// Protocol C's takeover deadlines drive the engine's sparse
/// fast-forward: the round clock jumps across huge idle gaps, which the
/// sharded stepper must cross at exactly the same rounds.
#[test]
fn fast_forward_heavy_c_matches_sequential_across_shard_counts() {
    assert_shard_invariant(|| ProtocolC::processes(16, 16).unwrap(), &Scenario::FailureFree, 16);
    assert_shard_invariant(
        || ProtocolC::processes(8, 16).unwrap(),
        &Scenario::DeadOnArrival { k: 15 },
        8,
    );
    assert_shard_invariant(
        || ProtocolC::processes(16, 16).unwrap(),
        &Scenario::DeepIdle { k: 15, round: Round::new(1 << 40) },
        16,
    );
}

/// Lockstep broadcasts after every unit — the densest message plane the
/// baselines offer, so the per-shard effect lanes carry real load.
#[test]
fn lockstep_broadcast_storm_matches_sequential_across_shard_counts() {
    assert_shard_invariant(|| Lockstep::processes(128, 16).unwrap(), &Scenario::FailureFree, 128);
}

/// The trigger-based random adversary consumes its RNG stream in
/// interception order; the sharded engine intercepts on the merge thread
/// in pid order, so the stream — and therefore who crashes — must be
/// bit-identical at every shard count.
#[test]
fn random_crashes_match_sequential_across_shard_counts() {
    for seed in 0..8u64 {
        let scenario = Scenario::Random { seed, p: 0.05, max_crashes: 15 };
        assert_shard_invariant(|| ProtocolB::processes(64, 16).unwrap(), &scenario, 64);
    }
}

/// Beyond fail-stop: crash-recovery (the revival queue) and slowdown
/// (fault-plan-wrapped processes) under sharded stepping.
#[test]
fn fault_models_match_sequential_across_shard_counts() {
    let recover = Scenario::CrashRecovery { pid: 0, round: 3, downtime: 16, wipe: false };
    assert_shard_invariant(|| ProtocolB::processes(64, 16).unwrap(), &recover, 64);

    let slow = Scenario::Slowdown { pid: 0, from: 2, factor: 4, rounds: 32 };
    assert_shard_invariant(
        || slow.fault_plan().wrap(ProtocolB::processes(64, 16).unwrap()),
        &slow,
        64,
    );

    let omit = Scenario::Omission { pid: 0, send: true, from: 1, rounds: 8 };
    assert_shard_invariant(|| ProtocolB::processes(64, 16).unwrap(), &omit, 64);
}

/// Omission faults pinned to **shard-boundary pids**: with t = 16 the
/// chunk sizes are 8 (2 shards), 6 (3), 4 (5), 3 (7), 2 (13), 1 (16/32),
/// so the pids below sit on a first-pid-of-shard or last-pid-of-shard
/// seam for at least one tested shard count. A send- or receive-side
/// filter applied exactly at a seam is where a lane- or range-off-by-one
/// in the parallel delivery build would surface.
#[test]
fn boundary_omissions_match_sequential_across_shard_counts() {
    for pid in [0u64, 3, 4, 6, 7, 8, 11, 12, 15] {
        for send in [true, false] {
            let omit = Scenario::Omission { pid, send, from: 1, rounds: 8 };
            assert_shard_invariant(|| ProtocolB::processes(64, 16).unwrap(), &omit, 64);
        }
    }
}

/// A broadcast storm (Lockstep broadcasts to everyone after every unit)
/// with an omission window at a shard seam: every op is a t-wide span
/// crossing all shard boundaries, while the filter clips one boundary
/// pid's traffic — the densest case for the per-shard CSR count/fill
/// passes and the receive-side filtered build.
#[test]
fn broadcast_storm_with_boundary_omission_matches_sequential() {
    for pid in [7u64, 8] {
        for send in [true, false] {
            let omit = Scenario::Omission { pid, send, from: 2, rounds: 16 };
            assert_shard_invariant(|| Lockstep::processes(128, 16).unwrap(), &omit, 128);
        }
    }
}

/// SplitMix64 — the per-(seed, pid, round) decision hash of the recorder
/// fixture below.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Ping(u64);

impl Classify for Ping {
    fn class(&self) -> &'static str {
        "ping"
    }
}

/// A process that logs its inbox verbatim: every receipt is appended to
/// `log` as `(sender, payload)` in iteration order. Each round it emits a
/// hash-drawn mix of unicasts, boundary-crossing multicasts, and
/// *same-recipient payload pairs* (two sends to one pid in one round —
/// the case a destination-bucketed exchange could swap), then terminates
/// after `rounds` actions.
#[derive(Clone)]
struct Recorder {
    me: usize,
    t: usize,
    seed: u64,
    rounds: u64,
    acted: u64,
    log: Vec<(usize, u64)>,
}

impl Recorder {
    fn procs(t: usize, seed: u64) -> Vec<Recorder> {
        (0..t)
            .map(|me| Recorder { me, t, seed, rounds: 6 + seed % 5, acted: 0, log: Vec::new() })
            .collect()
    }
}

impl Protocol for Recorder {
    type Msg = Ping;

    fn step(&mut self, round: Round, inbox: Inbox<'_, Ping>, eff: &mut Effects<Ping>) {
        for (from, msg) in inbox.iter() {
            self.log.push((from.index(), msg.0));
        }
        self.acted += 1;
        let h = mix(self.seed ^ ((self.me as u64) << 32) ^ round.get() as u64);
        if h.is_multiple_of(3) {
            eff.perform(Unit::new(1 + (h >> 8) as usize % 4));
        }
        let to = Pid::new((h >> 16) as usize % self.t);
        match (h >> 4) % 3 {
            0 => eff.send(to, Ping(h >> 24)),
            1 => {
                let lo = (h >> 16) as usize % self.t;
                let hi = lo + 1 + (h >> 34) as usize % (self.t - lo);
                eff.multicast(lo..hi, Ping(h >> 24));
            }
            _ => {
                // Two payloads to the same recipient in one round: their
                // relative order is the sharpest thing the exchange must
                // preserve.
                eff.send(to, Ping(h >> 24));
                eff.send(to, Ping(h >> 25));
            }
        }
        if self.acted >= self.rounds {
            eff.terminate();
        }
    }

    fn next_wakeup(&self, now: Round) -> Option<Round> {
        (self.acted < self.rounds).then_some(now)
    }
}

/// Runs `t` recorders to completion at a shard count and returns the
/// report plus every process's receipt log.
fn run_logs<A>(t: usize, seed: u64, shards: usize, adversary: A) -> (Report, Vec<Vec<(usize, u64)>>)
where
    A: doall::sim::Adversary<Ping>,
{
    let cfg = RunConfig::new(4, 100_000).with_trace().with_shards(shards);
    let (report, procs) =
        run_returning(Recorder::procs(t, seed), adversary, cfg).expect("recorders always retire");
    (report, procs.into_iter().map(|p| p.log).collect())
}

/// Up to `crashes` scripted crashes with assorted delivery filters, so the
/// sharded run also exercises the crash-clipped exchange paths.
fn recorder_schedule(t: usize, seed: u64, crashes: u64) -> CrashSchedule {
    let mut sched = CrashSchedule::new();
    for c in 0..crashes {
        let h = mix(seed ^ c.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let spec = match h % 3 {
            0 => CrashSpec::silent(),
            1 => CrashSpec::after_round(),
            _ => CrashSpec::prefix((h >> 40) as usize % (t + 1)),
        };
        sched = sched.crash_at(Pid::new(h as usize % t), 1 + (h >> 16) % 8, spec);
    }
    sched
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The two-phase effect exchange preserves each recipient's
    /// `(sender, payload)` inbox sequence exactly: at every shard count
    /// the receipt logs — not just the aggregate Report — match the
    /// sequential engine's, under no-failure runs (the routed parallel
    /// CSR build) and under scripted crashes (the clipped paths).
    #[test]
    fn two_phase_exchange_preserves_per_recipient_order(
        t in 8usize..=28,
        seed in any::<u64>(),
        crashes in 0u64..4,
    ) {
        let (seq_report, seq_logs) = if crashes == 0 {
            run_logs(t, seed, 1, NoFailures)
        } else {
            run_logs(t, seed, 1, recorder_schedule(t, seed, crashes))
        };
        for shards in [5usize, 16] {
            let (report, logs) = if crashes == 0 {
                run_logs(t, seed, shards, NoFailures)
            } else {
                run_logs(t, seed, shards, recorder_schedule(t, seed, crashes))
            };
            prop_assert_eq!(&seq_report, &report, "report diverged at {} shards", shards);
            prop_assert_eq!(&seq_logs, &logs, "inbox order diverged at {} shards", shards);
        }
    }
}
