//! Differential property test for the span-multicast message plane: a
//! *reference engine* that expands every send op into per-recipient
//! `(from, to, payload)` triples — the pre-PR-3 representation — must
//! produce byte-identical [`Report`]s (statuses and all metrics, including
//! `messages_by_class`, dead letters, and per-unit work multiplicities) to
//! the production engine's CSR span delivery, over randomly drawn
//! unicast/multicast patterns, crash schedules, and fast-forward gaps.

use doall::sim::{
    run, Adversary, AdversaryCtx, Classify, CrashSchedule, CrashSpec, Effects, Fate, Inbox,
    MemBudget, Metrics, Pid, Protocol, Report, Round, RunConfig, Status, Trace, Unit,
};
use proptest::prelude::*;

/// A payload with two metric classes, so `messages_by_class` is exercised.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Chat(u64);

impl Classify for Chat {
    fn class(&self) -> &'static str {
        if self.0.is_multiple_of(2) {
            "even"
        } else {
            "odd"
        }
    }
}

/// SplitMix64: the per-(seed, pid, round) decision hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A scripted chatterbox: acts every `stride` rounds from `start`, for
/// `actions` actions, each drawn from a deterministic hash — some mix of a
/// work unit, a unicast, one or two span multicasts (possibly covering
/// dead pids), and a note; the final action terminates. Also echoes the
/// first few received messages, so reactive sends (and their ordering) are
/// covered too. Strides are drawn up to ~1000 rounds, which drives the
/// engine's fast-forward path between actions.
#[derive(Clone)]
struct Chatter {
    me: usize,
    t: usize,
    n: usize,
    seed: u64,
    start: Round,
    stride: u128,
    actions: u64,
    acted: u64,
    echoes_left: u32,
    checksum: u64,
}

impl Chatter {
    fn procs(t: usize, n: usize, seed: u64) -> Vec<Chatter> {
        (0..t)
            .map(|me| {
                let h = mix(seed ^ (me as u64).wrapping_mul(0xA24B_AED4_963E_E407));
                let strides: [u128; 7] = [1, 2, 3, 5, 8, 40, 1000];
                Chatter {
                    me,
                    t,
                    n,
                    seed,
                    start: Round::from(1 + h % 25),
                    stride: strides[(h >> 32) as usize % strides.len()],
                    actions: 1 + (h >> 48) % 10,
                    acted: 0,
                    echoes_left: (h >> 16) as u32 % 4,
                    checksum: 0,
                }
            })
            .collect()
    }

    fn scheduled(&self, round: Round) -> bool {
        self.acted < self.actions
            && round >= self.start
            && (round - self.start).is_multiple_of(self.stride)
    }
}

impl Protocol for Chatter {
    type Msg = Chat;

    fn step(&mut self, round: Round, inbox: Inbox<'_, Chat>, eff: &mut Effects<Chat>) {
        for (from, msg) in inbox.iter() {
            self.checksum = mix(self.checksum ^ (from.index() as u64) ^ msg.0);
            if self.echoes_left > 0 {
                self.echoes_left -= 1;
                eff.send(from, Chat(self.checksum));
            }
        }
        if !self.scheduled(round) {
            return;
        }
        self.acted += 1;
        let h = mix(self.seed ^ (self.me as u64) << 32 ^ round.get() as u64);
        if h.is_multiple_of(3) {
            eff.perform(Unit::new(1 + (h >> 8) as usize % self.n));
        }
        match (h >> 16) % 4 {
            0 => {
                let to = Pid::new((h >> 24) as usize % self.t);
                eff.send(to, Chat(h >> 40));
            }
            1 => {
                let lo = (h >> 24) as usize % self.t;
                let hi = lo + 1 + (h >> 34) as usize % (self.t - lo);
                eff.multicast(lo..hi, Chat(h >> 40));
            }
            2 => {
                // Two ops in one round: a span and a unicast.
                let lo = (h >> 24) as usize % self.t;
                eff.multicast(lo..self.t, Chat(h >> 40));
                eff.send(Pid::new((h >> 45) as usize % self.t), Chat(h >> 50));
            }
            _ => eff.note("mumble"),
        }
        if self.acted == self.actions {
            eff.terminate();
        }
    }

    fn next_wakeup(&self, now: Round) -> Option<Round> {
        if self.acted >= self.actions {
            return None;
        }
        if now <= self.start {
            return Some(self.start);
        }
        Some(self.start + (now - self.start).div_ceil(self.stride) * self.stride)
    }
}

/// The reference engine: same model semantics as `doall::sim::run`, but
/// every send op is immediately expanded into one owned `(from, to,
/// payload)` triple per recipient — per-recipient clones, per-recipient
/// metric recording, per-recipient delivery — the representation the span
/// engine replaced.
fn run_reference<P, A>(mut procs: Vec<P>, mut adversary: A, cfg: RunConfig) -> Option<Report>
where
    P: Protocol,
    A: Adversary<P::Msg>,
{
    let t = procs.len();
    let mut statuses = vec![Status::Alive; t];
    let mut alive = vec![true; t];
    let mut live = t;
    let mut metrics = Metrics::new(cfg.n);
    let record_work = |m: &mut Metrics, unit: Unit| {
        m.work_total += 1;
        let idx = unit.zero_based();
        if idx >= m.work_by_unit.len() {
            m.work_by_unit.resize(idx + 1, 0);
        }
        m.work_by_unit[idx] += 1;
    };
    let mut pending: Vec<(Pid, Pid, P::Msg)> = Vec::new();
    let mut next_pending: Vec<(Pid, Pid, P::Msg)> = Vec::new();
    let mut eff: Effects<P::Msg> = Effects::new();
    let mut round: Round = Round::ONE;

    loop {
        if round > cfg.max_rounds {
            return None;
        }
        // Deliver: naive per-recipient inbox build.
        let mut inboxes: Vec<Vec<(Pid, P::Msg)>> = vec![Vec::new(); t];
        for (from, to, payload) in pending.drain(..) {
            if alive[to.index()] {
                inboxes[to.index()].push((from, payload));
            } else {
                metrics.dead_letters += 1;
            }
        }

        for idx in 0..t {
            if !alive[idx] {
                continue;
            }
            let pid = Pid::new(idx);
            eff.reset();
            procs[idx].step(round, Inbox::from_pairs(&inboxes[idx]), &mut eff);
            let ctx = AdversaryCtx::new(&alive, metrics.crashes);
            let fate = adversary.intercept(round, pid, &eff, ctx);
            match fate {
                Fate::Survive => {
                    if let Some(unit) = eff.work() {
                        record_work(&mut metrics, unit);
                    }
                    for op in eff.sends() {
                        for to in op.to.iter() {
                            let payload = op.payload.clone();
                            metrics.messages += 1;
                            *metrics.messages_by_class.entry(payload.class()).or_insert(0) += 1;
                            next_pending.push((pid, to, payload));
                        }
                    }
                    if eff.is_terminated() {
                        statuses[idx] = Status::Terminated(round);
                        alive[idx] = false;
                        live -= 1;
                        metrics.terminations += 1;
                    }
                }
                Fate::Crash(spec) => {
                    if spec.count_work {
                        if let Some(unit) = eff.work() {
                            record_work(&mut metrics, unit);
                        }
                    }
                    let mut i = 0usize;
                    for op in eff.sends() {
                        for to in op.to.iter() {
                            if spec.deliver.lets_through(i, to) {
                                let payload = op.payload.clone();
                                metrics.messages += 1;
                                *metrics.messages_by_class.entry(payload.class()).or_insert(0) += 1;
                                next_pending.push((pid, to, payload));
                            }
                            i += 1;
                        }
                    }
                    statuses[idx] = Status::Crashed(round);
                    alive[idx] = false;
                    live -= 1;
                    metrics.crashes += 1;
                }
                Fate::Omit(filter) => {
                    // Send omission: the process survives, works, and its
                    // filtered messages count as omissions.
                    if let Some(unit) = eff.work() {
                        record_work(&mut metrics, unit);
                    }
                    let mut i = 0usize;
                    for op in eff.sends() {
                        for to in op.to.iter() {
                            if filter.lets_through(i, to) {
                                let payload = op.payload.clone();
                                metrics.messages += 1;
                                *metrics.messages_by_class.entry(payload.class()).or_insert(0) += 1;
                                next_pending.push((pid, to, payload));
                            } else {
                                metrics.omissions += 1;
                            }
                            i += 1;
                        }
                    }
                    if eff.is_terminated() {
                        statuses[idx] = Status::Terminated(round);
                        alive[idx] = false;
                        live -= 1;
                        metrics.terminations += 1;
                    }
                }
                Fate::CrashRecover { .. } => {
                    unreachable!("the differential fixtures use fail-stop adversaries only")
                }
            }
        }

        if live == 0 {
            metrics.rounds = round;
            return Some(Report {
                metrics,
                trace: Trace::new(),
                statuses,
                mem: MemBudget::default(),
                executed_rounds: 0,
            });
        }

        std::mem::swap(&mut pending, &mut next_pending);
        next_pending.clear();

        if pending.is_empty() {
            let next = round.next();
            let wake = (0..t)
                .filter(|&i| alive[i])
                .filter_map(|i| procs[i].next_wakeup(next))
                .map(|w| w.max(next))
                .min();
            let adv = adversary.next_event(next).map(|r| r.max(next));
            round = match (wake, adv) {
                (Some(w), Some(a)) => w.min(a),
                (Some(w), None) => w,
                (None, Some(a)) => a,
                (None, None) => return None, // deadlock: Chatters never do this
            };
        } else {
            round = round.next();
        }
    }
}

/// A random crash schedule: up to 5 crashes with every delivery-filter
/// shape (silent, after-round, prefix, arbitrary subset).
fn crash_schedule(t: usize, seed: u64) -> CrashSchedule {
    let mut sched = CrashSchedule::new();
    let crashes = mix(seed) % 6;
    for c in 0..crashes {
        let h = mix(seed ^ c.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let pid = Pid::new(h as usize % t);
        let round = 1 + (h >> 16) % 60;
        let spec = match (h >> 32) % 4 {
            0 => CrashSpec::silent(),
            1 => CrashSpec::after_round(),
            2 => CrashSpec::prefix((h >> 40) as usize % (t + 1)),
            _ => {
                let members = (0..t).filter(|&p| (h >> (p % 24)) & 1 == 1).map(Pid::new);
                CrashSpec::subset(members)
            }
        };
        sched = sched.crash_at(pid, round, spec);
    }
    sched
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// The span engine and the per-recipient reference engine agree on the
    /// complete Report: statuses, message counts (total, per class, dead
    /// letters), per-unit work multiplicities, and the final round.
    #[test]
    fn span_engine_matches_per_recipient_reference(
        t in 1usize..=10,
        n in 1usize..=12,
        seed in any::<u64>(),
    ) {
        let cfg = RunConfig::new(n, 200_000);
        let sched = crash_schedule(t, seed);
        let fast = run(Chatter::procs(t, n, seed), sched.clone(), cfg.clone())
            .expect("chatters always retire");
        let reference = run_reference(Chatter::procs(t, n, seed), sched, cfg)
            .expect("reference run must complete identically");
        prop_assert_eq!(&fast.metrics, &reference.metrics);
        prop_assert_eq!(&fast.statuses, &reference.statuses);
    }

    /// Sanity on the generator itself: some drawn systems really do send
    /// multicasts and suffer crashes (the comparison is not vacuous).
    #[test]
    fn chatter_runs_produce_traffic(seed in any::<u64>()) {
        let report = run(
            Chatter::procs(8, 8, seed),
            crash_schedule(8, seed),
            RunConfig::new(8, 200_000),
        ).expect("chatters always retire");
        // Every process retired one way or the other.
        prop_assert_eq!(
            u64::from(report.metrics.crashes + report.metrics.terminations),
            8u64
        );
    }
}
