//! The service plane's load-bearing promise: a job served through a
//! [`Session`]'s shared pool is **bit-identical** to a direct engine run —
//! on both planes, across shard counts, and under fault plans — and
//! admission control never loses or duplicates a job.

use doall::service::{Admission, ArrivalModel, JobSpec, Pool, Session, Verdict};
use doall::sim::asynch::{run_async, AsyncConfig, DelayDist};
use doall::sim::{run, RunConfig};
use doall::workload::Scenario;
use doall::{AsyncProtocolA, AsyncProtocolB, ProtocolB, ProtocolD};
use proptest::prelude::*;

/// Serves one sync-plane spec through a session and returns its report.
fn serve_sync(spec: JobSpec<ProtocolB>) -> doall::sim::Report {
    let mut session = Session::new(Pool::new(64), Admission::new(2));
    session.submit(5, spec.label("probe").into_job());
    let fleet = session.run();
    let record = fleet.find("probe").expect("served");
    assert_eq!(record.verdict, Verdict::Completed);
    record.report.as_ref().unwrap().as_sync().unwrap().clone()
}

/// Service ≡ direct ≡ legacy `run(...)`, across shard counts and a fault
/// plan, on the synchronous plane.
#[test]
fn sync_service_is_bit_identical_to_direct_run() {
    let (n, t) = (64u64, 16u64);
    let scenarios = [
        Scenario::FailureFree,
        Scenario::DeadOnArrival { k: t / 2 },
        Scenario::CrashRecovery { pid: 0, round: 4, downtime: 6, wipe: true },
    ];
    for scenario in scenarios {
        for shards in [1usize, 4] {
            let spec = || {
                JobSpec::new(ProtocolB::processes(n, t).unwrap(), n as usize)
                    .scenario(scenario.clone())
                    .with_trace()
                    .shards(shards)
            };
            let direct = spec().run().unwrap();
            // The thin shim changes nothing: the legacy entry point with
            // the same adversary produces the same report.
            let legacy = run(
                ProtocolB::processes(n, t).unwrap(),
                scenario.adversary(),
                RunConfig::new(n as usize, u64::MAX - 1).with_trace().with_shards(shards),
            )
            .unwrap();
            assert_eq!(direct, legacy, "{} shards={shards}: shim drift", scenario.label());
            let served = serve_sync(spec());
            assert_eq!(direct, served, "{} shards={shards}: service drift", scenario.label());
        }
    }
}

/// Slow-fault scenarios (wrapper-enforced) survive the service round trip
/// identically too.
#[test]
fn sync_service_matches_direct_under_slowdown() {
    let (n, t) = (64u64, 16u64);
    let scenario = Scenario::Slowdown { pid: 0, from: 2, factor: 4, rounds: 16 };
    let spec = || {
        JobSpec::new(ProtocolB::processes(n, t).unwrap(), n as usize)
            .scenario(scenario.clone())
            .with_trace()
    };
    let direct = spec().run().unwrap();
    assert!(direct.metrics.all_work_done());
    let served = serve_sync(spec());
    assert_eq!(direct, served);
}

/// Service ≡ direct ≡ legacy `run_async(...)` on the asynchronous plane,
/// failure-free and under a fault plan, across delay seeds.
#[test]
fn async_service_is_bit_identical_to_direct_run() {
    let (n, t) = (32u64, 16u64);
    let scenarios = [
        Scenario::FailureFree,
        Scenario::CrashRecovery { pid: 0, round: 9, downtime: 40, wipe: false },
    ];
    for scenario in scenarios {
        for seed in [0u64, 7, 42] {
            let spec = || {
                JobSpec::new(AsyncProtocolA::processes(n, t).unwrap(), n as usize)
                    .scenario(scenario.clone())
                    .seed(seed)
                    .delay(DelayDist::Uniform, 7)
                    .with_trace()
            };
            let direct = spec().run_async().unwrap();
            let legacy = run_async(
                AsyncProtocolA::processes(n, t).unwrap(),
                scenario.async_adversary(),
                AsyncConfig::new(n as usize, seed).with_delay(DelayDist::Uniform, 7).with_trace(),
            )
            .unwrap();
            assert_eq!(direct, legacy, "{} seed={seed}: shim drift", scenario.label());

            let mut session = Session::new(Pool::new(64), Admission::new(2));
            session.submit(3, spec().label("probe").into_async_job());
            let fleet = session.run();
            let record = fleet.find("probe").expect("served");
            assert_eq!(record.verdict, Verdict::Completed);
            let served = record.report.as_ref().unwrap().as_async().unwrap();
            assert_eq!(&direct, served, "{} seed={seed}: service drift", scenario.label());
        }
    }
}

/// Mixed-plane fleets: both engines' jobs share one pool, every record
/// keeps its own plane's report.
#[test]
fn mixed_plane_fleet_serves_both_engines() {
    let (n, t) = (32u64, 16u64);
    let mut session = Session::new(Pool::new(32), Admission::new(4));
    session.submit(
        0,
        JobSpec::new(ProtocolB::processes(n, t).unwrap(), n as usize).label("sync").into_job(),
    );
    session.submit(
        0,
        JobSpec::new(AsyncProtocolB::processes(n, t).unwrap(), n as usize)
            .seed(7)
            .delay(DelayDist::Uniform, 4)
            .label("async")
            .into_async_job(),
    );
    let fleet = session.run();
    assert_eq!(fleet.metrics.completed, 2);
    assert!(fleet.find("sync").unwrap().report.as_ref().unwrap().as_sync().is_some());
    assert!(fleet.find("async").unwrap().report.as_ref().unwrap().as_async().is_some());
    assert!(fleet.metrics.utilization > 0.0);
}

/// Deterministic backpressure arithmetic: a burst of five single-width
/// jobs into a one-slot pool with a queue cap of 2 admits exactly three.
#[test]
fn backpressure_counts_are_exact() {
    let mut session = Session::new(Pool::new(4), Admission::new(2));
    for i in 0..5 {
        let job =
            JobSpec::new(ProtocolD::processes(4, 4).unwrap(), 4).label(format!("j{i}")).into_job();
        session.submit(0, job);
    }
    let fleet = session.run();
    assert_eq!(fleet.metrics.jobs, 5);
    assert_eq!(fleet.metrics.completed, 3); // 1 starts + 2 queued
    assert_eq!(fleet.metrics.rejected, 2);
    assert_eq!(fleet.metrics.deferred, 2);
    assert_eq!(fleet.metrics.max_queue_depth, 2);
    // FIFO: the earliest submissions win.
    for i in 0..3 {
        assert_eq!(fleet.find(&format!("j{i}")).unwrap().verdict, Verdict::Completed);
    }
}

/// A job wider than the whole pool is rejected outright, not queued.
#[test]
fn oversize_jobs_are_rejected() {
    let mut session = Session::new(Pool::new(8), Admission::new(4));
    session.submit(
        0,
        JobSpec::new(ProtocolD::processes(16, 16).unwrap(), 16).label("wide").into_job(),
    );
    let fleet = session.run();
    assert_eq!(
        fleet.find("wide").unwrap().verdict,
        Verdict::Rejected(doall::service::RejectReason::Oversize)
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Admission/backpressure conservation: however arrivals, pool width,
    /// and the queue cap interact, no job is lost or duplicated — every
    /// submission yields exactly one record, dispositions partition the
    /// stream, and every completed job ran within the session horizon.
    #[test]
    fn admission_never_loses_or_duplicates_jobs(
        jobs in 1usize..24,
        slots_pow in 2u32..6,         // pool of 4..=32 slots
        queue_cap in 0usize..6,
        seed in any::<u64>(),
        model_pick in 0usize..3,
    ) {
        let slots = 1usize << slots_pow;
        let model = match model_pick {
            0 => ArrivalModel::Poisson { mean_gap: 9.0 },
            1 => ArrivalModel::Bursty { burst: 3, period: 40 },
            _ => ArrivalModel::Diurnal { period: 200, peak_gap: 3.0, trough_gap: 30.0 },
        };
        let mut session = Session::new(Pool::new(slots), Admission::new(queue_cap));
        for (i, at) in model.times(seed, jobs).into_iter().enumerate() {
            // Alternate widths so some jobs are oversize for small pools.
            let t = if i % 3 == 0 { 8 } else { 4 };
            let job = JobSpec::new(ProtocolD::processes(2 * t, t).unwrap(), 2 * t as usize)
                .label(format!("j{i}"))
                .into_job();
            session.submit(at, job);
        }
        let fleet = session.run();

        // No loss, no duplication: one record per submission, each label
        // exactly once.
        prop_assert_eq!(fleet.metrics.jobs, jobs);
        prop_assert_eq!(fleet.records.len(), jobs);
        for i in 0..jobs {
            let label = format!("j{i}");
            prop_assert_eq!(
                fleet.records.iter().filter(|r| r.label == label).count(),
                1,
                "label {} duplicated or lost", label
            );
        }
        // Dispositions partition the stream.
        prop_assert_eq!(
            fleet.metrics.completed + fleet.metrics.rejected + fleet.metrics.failed,
            jobs
        );
        // Causality: starts after submission, finishes within the horizon.
        for r in &fleet.records {
            match r.verdict {
                Verdict::Completed => {
                    let started = r.started.unwrap();
                    prop_assert!(started >= r.submitted);
                    prop_assert!(r.finished.unwrap() <= fleet.metrics.horizon);
                    prop_assert!(r.report.is_some());
                }
                Verdict::Rejected(_) => {
                    prop_assert!(r.started.is_none());
                    prop_assert!(r.report.is_none());
                }
                Verdict::Failed => prop_assert!(r.report.is_none()),
            }
        }
        prop_assert_eq!(fleet.metrics.failed, 0, "these jobs cannot fail");
    }
}
