//! Regression fixture for the chaos campaign's failure path: a protocol
//! with a deliberately seeded Do-All contract violation is detected by
//! the campaign oracle, auto-shrunk to a minimal repro (≤ 3 faults), and
//! the emitted `doall-chaos-repro v1` file replays deterministically.
//!
//! The buggy protocol, `ForgetfulSpread`, statically partitions the `n`
//! units into per-process chunks and never reassigns them: a crash loses
//! the victim's chunk forever, yet the survivors terminate anyway. That
//! is exactly the class of bug the effectiveness checkers exist to catch
//! (survivors retired with work left undone).

use doall::sim::chaos::{contract_violations, shrink, ChaosCase, ChaosConfig, Plane, Repro};
use doall::sim::invariants::check_termination_after_completion;
use doall::sim::{run, Classify, Effects, Inbox, Protocol, Round, RunConfig, Unit};

#[derive(Clone, Debug)]
struct Hush;
impl Classify for Hush {}

/// Statically partitions units across processes with no hand-off: each
/// process performs its own chunk, one unit per round, then retires. Any
/// crash strands the victim's remaining units — the seeded bug.
struct ForgetfulSpread {
    next: usize,
    last: usize,
}

impl ForgetfulSpread {
    fn build(n: usize, t: usize) -> Vec<Self> {
        let chunk = n.div_ceil(t.max(1));
        (0..t)
            .map(|p| ForgetfulSpread { next: p * chunk + 1, last: ((p + 1) * chunk).min(n) })
            .collect()
    }
}

impl Protocol for ForgetfulSpread {
    type Msg = Hush;

    fn step(&mut self, _: Round, _: Inbox<'_, Hush>, eff: &mut Effects<Hush>) {
        if self.next <= self.last {
            eff.perform(Unit::new(self.next));
            self.next += 1;
        }
        if self.next > self.last {
            eff.terminate();
        }
    }

    fn next_wakeup(&self, now: Round) -> Option<Round> {
        Some(now)
    }
}

/// The campaign oracle, specialised to `ForgetfulSpread`: `None` when the
/// case is not runnable (invalid plan for its `t`), otherwise the list of
/// contract/invariant violations (empty = clean run).
fn violations(case: &ChaosCase) -> Option<Vec<String>> {
    let plan = case.plan();
    if plan.validate(case.t).is_err() {
        return None;
    }
    let procs = plan.wrap(ForgetfulSpread::build(case.n, case.t));
    let cfg = RunConfig::new(case.n, Round::MAX).with_trace().with_stall_window(4_096);
    Some(match run(procs, plan, cfg) {
        Ok(report) => {
            let mut v = contract_violations(report.survivor_count(), &report.metrics);
            v.extend(
                check_termination_after_completion(&report.trace, case.n)
                    .into_iter()
                    .map(|w| format!("retirement: {w}")),
            );
            v
        }
        Err(e) => vec![format!("liveness: {e}")],
    })
}

fn fails(case: &ChaosCase) -> bool {
    violations(case).is_some_and(|v| !v.is_empty())
}

#[test]
fn seeded_bug_is_found_shrunk_and_replayed_from_its_repro_file() {
    // t = 4, n = 64: chunks take 16 rounds, so faults drawn from the
    // generator's default horizon routinely strike mid-chunk.
    let cfg = ChaosConfig::new(4, 64).crashes_only();

    // Campaign phase: sweep the seed bank until the bug surfaces. It must
    // surface quickly — a crash in rounds 1..=16 strands a chunk.
    let found = (0u64..64).map(|s| ChaosCase::generate(s, &cfg)).find(fails);
    let case = found.expect("the seeded contract violation must be detected within 64 seeds");
    let full = violations(&case).unwrap();
    assert!(
        full.iter().any(|v| v.contains("unit(s)")),
        "the violation must be the effectiveness contract, got {full:?}"
    );

    // Shrink phase: the minimal repro needs at most 3 faults (the
    // acceptance bar); for a single-crash bug it is exactly 1.
    let min = shrink(&case, fails);
    assert!(fails(&min), "shrinking must preserve failure");
    assert!(
        min.faults.len() <= 3,
        "shrunk case must have <= 3 faults, got {}: {:?}",
        min.faults.len(),
        min.faults
    );
    assert!(min.t <= case.t && min.n <= case.n, "shrinking must not grow the system");

    // Repro phase: emit -> parse round-trips, and the parsed case replays
    // the identical violation list twice (determinism).
    let repro = Repro { protocol: "forgetful".to_string(), plane: Plane::Sync, case: min };
    let text = repro.emit();
    // The pinned derivation quoted in EXPERIMENTS.md e16 (run with
    // `cargo test --test chaos -- --nocapture` to regenerate).
    eprintln!(
        "e16: seed {} ({} fault(s), t={}, n={}) shrank to {} fault(s), t={}, n={}; violation: {}\n{text}",
        case.seed,
        case.faults.len(),
        case.t,
        case.n,
        repro.case.faults.len(),
        repro.case.t,
        repro.case.n,
        full[0],
    );
    let parsed = Repro::parse(&text).expect("emitted repro must parse");
    assert_eq!(parsed.case, repro.case);
    assert_eq!(parsed.protocol, "forgetful");
    assert_eq!(parsed.plane, Plane::Sync);
    let first = violations(&parsed.case).expect("parsed case must be runnable");
    let second = violations(&parsed.case).unwrap();
    assert!(!first.is_empty(), "parsed repro must still fail");
    assert_eq!(first, second, "replay must be deterministic");
}

#[test]
fn fault_free_runs_of_the_buggy_protocol_are_clean() {
    // The bug only manifests under faults: with an empty plan every chunk
    // completes, so the oracle must report a clean run (no false alarms).
    let case = ChaosCase { seed: 0, t: 4, n: 64, faults: Vec::new() };
    assert_eq!(violations(&case), Some(Vec::new()));
}

#[test]
fn late_crashes_after_retirement_are_not_violations() {
    // Crashing a process after it finished its chunk loses nothing; the
    // oracle must not flag it (crash timing matters, not crash presence).
    use doall::sim::{FaultKind, Pid};
    let case =
        ChaosCase { seed: 0, t: 4, n: 64, faults: vec![FaultKind::Crash(Pid::new(1)).at(30u64)] };
    assert_eq!(violations(&case), Some(Vec::new()));
}
