//! Snapshot/restore differential proptests: on both execution planes,
//! pausing a run at an arbitrary point, snapshotting, and resuming must
//! be *bit-identical* to the uninterrupted run — same metrics, same
//! trace, same final statuses — under chaos-generated fault plans as
//! well as fault-free ones.
//!
//! This is the checkpoint contract the chaos campaign and any future
//! long-run experiment harness lean on: a snapshot is not "approximately
//! the same run", it is the same run.

use doall::sim::asynch::{AsyncConfig, AsyncEngine, DelayDist, Time};
use doall::sim::chaos::{ChaosCase, ChaosConfig};
use doall::sim::{Engine, FaultPlan, Report, Round, RunConfig};
use doall::{AsyncProtocolB, ProtocolB};
use proptest::prelude::*;

/// A fault plan drawn from the chaos generator (seed 0 ⇒ the empty,
/// fault-free plan, so the zero-fault differential is always covered).
fn plan_for(seed: u64, t: usize, n: usize) -> FaultPlan {
    if seed == 0 {
        FaultPlan::default()
    } else {
        ChaosCase::generate(seed, &ChaosConfig::new(t, n)).plan()
    }
}

/// Runs Protocol B (t = 16, n = 64) under `plan` on the sync plane,
/// pausing at `pause` for a snapshot/resume round-trip when given.
fn sync_run(plan: &FaultPlan, pause: Option<Round>) -> Report {
    let procs = plan.wrap(ProtocolB::processes(64, 16).expect("valid B shape"));
    let cfg = RunConfig::new(64, Round::MAX).with_trace();
    let mut engine = Engine::new(procs, plan.clone(), cfg).expect("plan validates at t = 16");
    let finished = engine.run_until(pause).expect("run must complete");
    if !finished {
        let snapshot = engine.snapshot();
        drop(engine);
        engine = Engine::resume(snapshot);
        engine.run_until(None).expect("resumed run must complete");
    }
    engine.into_report().0
}

/// The async-plane counterpart: Async Protocol B under uniform delivery
/// delays seeded by `delay_seed`, paused at virtual time `pause`.
fn async_run(
    plan: &FaultPlan,
    delay_seed: u64,
    pause: Option<Time>,
) -> doall::sim::asynch::AsyncReport {
    let procs = plan.wrap_async(AsyncProtocolB::processes(64, 16).expect("valid B shape"));
    let cfg = AsyncConfig::new(64, delay_seed).with_delay(DelayDist::Uniform, 4).with_trace();
    let mut engine = AsyncEngine::new(procs, plan.clone(), cfg).expect("plan validates at t = 16");
    let finished = engine.run_until(pause).expect("run must complete");
    if !finished {
        let snapshot = engine.snapshot();
        drop(engine);
        engine = AsyncEngine::resume(snapshot);
        engine.run_until(None).expect("resumed run must complete");
    }
    engine.into_report()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Sync plane: snapshot-at-`pause`-then-resume ≡ straight run, for
    /// fault-free (seed 0) and chaos-faulted plans alike.
    #[test]
    fn sync_snapshot_resume_is_bit_identical(plan_seed in 0u64..32, pause in 1u64..48) {
        let plan = plan_for(plan_seed, 16, 64);
        let straight = sync_run(&plan, None);
        let resumed = sync_run(&plan, Some(Round::new(pause as u128)));
        prop_assert_eq!(straight, resumed);
    }

    /// Async plane: same contract at a virtual-time pause point, with the
    /// delivery-delay sampler's RNG state captured mid-stream.
    #[test]
    fn async_snapshot_resume_is_bit_identical(
        plan_seed in 0u64..16,
        delay_seed in 0u64..8,
        pause in 1u64..64,
    ) {
        let plan = plan_for(plan_seed, 16, 64);
        let straight = async_run(&plan, delay_seed, None);
        let resumed = async_run(&plan, delay_seed, Some(Time::new(pause as u128)));
        prop_assert_eq!(straight, resumed);
    }
}

/// Pausing after the run already finished must be a no-op path that still
/// produces the identical report (the snapshot branch is never taken).
#[test]
fn pause_beyond_completion_matches_straight_run() {
    let plan = plan_for(7, 16, 64);
    let straight = sync_run(&plan, None);
    let late = sync_run(&plan, Some(Round::new(u64::MAX as u128)));
    assert_eq!(straight, late);
}

/// Snapshotting every few rounds in a chain (snapshot → resume → snapshot
/// → …) must still converge to the straight run: snapshots compose.
#[test]
fn chained_snapshots_compose() {
    let plan = plan_for(3, 16, 64);
    let straight = sync_run(&plan, None);

    let procs = plan.wrap(ProtocolB::processes(64, 16).expect("valid B shape"));
    let cfg = RunConfig::new(64, Round::MAX).with_trace();
    let mut engine = Engine::new(procs, plan.clone(), cfg).expect("plan validates");
    let mut next_pause = 2u128;
    while !engine.run_until(Some(Round::new(next_pause))).expect("segment must run") {
        engine = Engine::resume(engine.snapshot());
        next_pause += 3;
    }
    assert_eq!(straight, engine.into_report().0);
}
