//! Property-based tests (proptest) over randomly drawn system shapes and
//! crash schedules: correctness ("all work done whenever one process
//! survives"), the theorem bounds, the single-active invariants, and the
//! deadline identities of Lemma 2.5.

use doall::bounds::deadlines_ab::{ddb, tt, AbParams};
use doall::bounds::theorems;
use doall::sim::invariants::{check_activation_order, check_single_active};
use doall::sim::{run, RunConfig};
use doall::workload::Scenario;
use doall::{ProtocolA, ProtocolB, ProtocolC, ProtocolD};
use proptest::prelude::*;

/// Valid Protocol A/B shapes: t a perfect square, t | n, n >= t.
fn ab_shape() -> impl Strategy<Value = (u64, u64)> {
    (1u64..=6, 1u64..=6).prop_map(|(s, k)| {
        let t = s * s;
        (t * k, t)
    })
}

/// Valid Protocol C shapes, kept small (exponential deadlines).
fn c_shape() -> impl Strategy<Value = (u64, u64)> {
    (1u64..=3, 1u64..=3).prop_map(|(log_t, k)| {
        let t = 1u64 << log_t;
        (t * k, t)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Lemma 2.5(a): TT(j,k) + TT(l,j) = TT(l,k) for l > j > k.
    #[test]
    fn lemma_2_5_a_holds((n, t) in ab_shape(), seed in any::<u64>()) {
        prop_assume!(t >= 3);
        let p = AbParams::new(n, t);
        let k = seed % (t - 2);
        let j = k + 1 + (seed >> 8) % (t - k - 2).max(1);
        let l = j + 1 + (seed >> 16) % (t - j - 1).max(1);
        prop_assume!(l < t);
        prop_assert_eq!(tt(p, j, k) + tt(p, l, j), tt(p, l, k));
    }

    /// Lemma 2.5(b): TT(j,k) + DDB(l,j) = DDB(l,k) when group(j) < group(l).
    #[test]
    fn lemma_2_5_b_holds((n, t) in ab_shape(), seed in any::<u64>()) {
        prop_assume!(t >= 4);
        let p = AbParams::new(n, t);
        let k = seed % (t - 2);
        let j = k + 1 + (seed >> 8) % (t - k - 2).max(1);
        let l = j + 1 + (seed >> 16) % (t - j - 1).max(1);
        prop_assume!(l < t && p.group_of(j) < p.group_of(l));
        prop_assert_eq!(tt(p, j, k) + ddb(p, l, j), ddb(p, l, k));
    }

    /// Protocol A: correctness and Theorem 2.3 under random crash storms.
    #[test]
    fn protocol_a_random_storms((n, t) in ab_shape(), seed in any::<u64>(), p in 0.0f64..0.08) {
        let scenario = Scenario::Random { seed, p, max_crashes: (t - 1) as u32 };
        let report = run(
            ProtocolA::processes(n, t).unwrap(),
            scenario.adversary(),
            RunConfig::new(n as usize, u64::MAX - 1).with_trace(),
        ).unwrap();
        prop_assert!(report.has_survivor());
        prop_assert!(report.metrics.all_work_done());
        let b = theorems::protocol_a(n, t);
        prop_assert!(report.metrics.work_total <= b.work);
        prop_assert!(report.metrics.messages <= b.messages);
        prop_assert!(report.metrics.rounds <= b.rounds);
        prop_assert!(check_single_active(&report.trace).is_empty());
        prop_assert!(check_activation_order(&report.trace).is_empty());
    }

    /// Protocol B: correctness and Theorem 2.8 under random crash storms.
    #[test]
    fn protocol_b_random_storms((n, t) in ab_shape(), seed in any::<u64>(), p in 0.0f64..0.08) {
        let scenario = Scenario::Random { seed, p, max_crashes: (t - 1) as u32 };
        let report = run(
            ProtocolB::processes(n, t).unwrap(),
            scenario.adversary(),
            RunConfig::new(n as usize, u64::MAX - 1).with_trace(),
        ).unwrap();
        prop_assert!(report.metrics.all_work_done());
        let b = theorems::protocol_b(n, t);
        prop_assert!(report.metrics.work_total <= b.work);
        prop_assert!(report.metrics.messages <= b.messages);
        prop_assert!(report.metrics.rounds <= b.rounds,
            "rounds {} > bound {}", report.metrics.rounds, b.rounds);
        prop_assert!(check_single_active(&report.trace).is_empty());
        prop_assert!(check_activation_order(&report.trace).is_empty());
    }

    /// Protocol C: correctness, Theorem 3.8, and the knowledge-order
    /// invariant (checked live by a debug assertion inside the merge).
    #[test]
    fn protocol_c_random_storms((n, t) in c_shape(), seed in any::<u64>(), p in 0.0f64..0.08) {
        let scenario = Scenario::Random { seed, p, max_crashes: (t - 1) as u32 };
        let report = run(
            ProtocolC::processes(n, t).unwrap(),
            scenario.adversary(),
            RunConfig::new(n as usize, u64::MAX - 1).with_trace(),
        ).unwrap();
        prop_assert!(report.metrics.all_work_done());
        let b = theorems::protocol_c(n, t);
        prop_assert!(report.metrics.work_total <= b.work,
            "work {} > bound {}", report.metrics.work_total, b.work);
        prop_assert!(report.metrics.messages <= b.messages);
        prop_assert!(check_single_active(&report.trace).is_empty());
    }

    /// Protocol D accepts arbitrary shapes (no divisibility assumptions)
    /// and keeps Theorem 4.1's envelope under random storms.
    #[test]
    fn protocol_d_random_storms(n in 1u64..=60, t in 1u64..=12, seed in any::<u64>(), p in 0.0f64..0.08) {
        let scenario = Scenario::Random { seed, p, max_crashes: t.saturating_sub(1) as u32 };
        let report = run(
            ProtocolD::processes(n, t).unwrap(),
            scenario.adversary(),
            RunConfig::new(n as usize, u64::MAX - 1).with_trace(),
        ).unwrap();
        prop_assert!(report.metrics.all_work_done());
        let f = u64::from(report.metrics.crashes);
        let b = theorems::protocol_d_fallback(n, t, f);
        prop_assert!(report.metrics.work_total <= b.work,
            "work {} > bound {} (f = {f})", report.metrics.work_total, b.work);
        prop_assert!(report.metrics.messages <= b.messages);
    }

    /// Dead-on-arrival prefixes of any length leave a working system.
    #[test]
    fn dead_on_arrival_any_prefix((n, t) in ab_shape(), frac in 0.0f64..1.0) {
        prop_assume!(t >= 2);
        let k = ((t - 1) as f64 * frac) as u64;
        let scenario = Scenario::DeadOnArrival { k };
        let report = run(
            ProtocolB::processes(n, t).unwrap(),
            scenario.adversary(),
            RunConfig::new(n as usize, u64::MAX - 1).with_trace(),
        ).unwrap();
        prop_assert!(report.metrics.all_work_done());
        prop_assert_eq!(report.metrics.work_total, n, "dead processes did nothing; no rework");
    }

    /// Determinism as a property: equal inputs, equal outputs.
    #[test]
    fn metrics_are_deterministic((n, t) in ab_shape(), seed in any::<u64>()) {
        let mk = || run(
            ProtocolB::processes(n, t).unwrap(),
            Scenario::Random { seed, p: 0.03, max_crashes: (t - 1) as u32 }.adversary(),
            RunConfig::new(n as usize, u64::MAX - 1),
        ).unwrap().metrics;
        prop_assert_eq!(mk(), mk());
    }
}
