//! Property-based tests (proptest) over randomly drawn system shapes and
//! crash schedules: correctness ("all work done whenever one process
//! survives"), the theorem bounds, the single-active invariants, and the
//! deadline identities of Lemma 2.5.

use doall::bounds::deadlines_ab::{ddb, tt, AbParams};
use doall::bounds::theorems;
use doall::sim::invariants::{check_activation_order, check_single_active};
use doall::sim::{run, RunConfig};
use doall::workload::Scenario;
use doall::{ProtocolA, ProtocolB, ProtocolC, ProtocolD};
use proptest::prelude::*;

/// Valid Protocol A/B shapes: t a perfect square, t | n, n >= t.
fn ab_shape() -> impl Strategy<Value = (u64, u64)> {
    (1u64..=6, 1u64..=6).prop_map(|(s, k)| {
        let t = s * s;
        (t * k, t)
    })
}

/// Valid Protocol C shapes, kept small (exponential deadlines).
fn c_shape() -> impl Strategy<Value = (u64, u64)> {
    (1u64..=3, 1u64..=3).prop_map(|(log_t, k)| {
        let t = 1u64 << log_t;
        (t * k, t)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Lemma 2.5(a): TT(j,k) + TT(l,j) = TT(l,k) for l > j > k.
    #[test]
    fn lemma_2_5_a_holds((n, t) in ab_shape(), seed in any::<u64>()) {
        prop_assume!(t >= 3);
        let p = AbParams::new(n, t);
        let k = seed % (t - 2);
        let j = k + 1 + (seed >> 8) % (t - k - 2).max(1);
        let l = j + 1 + (seed >> 16) % (t - j - 1).max(1);
        prop_assume!(l < t);
        prop_assert_eq!(tt(p, j, k) + tt(p, l, j), tt(p, l, k));
    }

    /// Lemma 2.5(b): TT(j,k) + DDB(l,j) = DDB(l,k) when group(j) < group(l).
    #[test]
    fn lemma_2_5_b_holds((n, t) in ab_shape(), seed in any::<u64>()) {
        prop_assume!(t >= 4);
        let p = AbParams::new(n, t);
        let k = seed % (t - 2);
        let j = k + 1 + (seed >> 8) % (t - k - 2).max(1);
        let l = j + 1 + (seed >> 16) % (t - j - 1).max(1);
        prop_assume!(l < t && p.group_of(j) < p.group_of(l));
        prop_assert_eq!(tt(p, j, k) + ddb(p, l, j), ddb(p, l, k));
    }

    /// Protocol A: correctness and Theorem 2.3 under random crash storms.
    #[test]
    fn protocol_a_random_storms((n, t) in ab_shape(), seed in any::<u64>(), p in 0.0f64..0.08) {
        let scenario = Scenario::Random { seed, p, max_crashes: (t - 1) as u32 };
        let report = run(
            ProtocolA::processes(n, t).unwrap(),
            scenario.adversary(),
            RunConfig::new(n as usize, u64::MAX - 1).with_trace(),
        ).unwrap();
        prop_assert!(report.has_survivor());
        prop_assert!(report.metrics.all_work_done());
        let b = theorems::protocol_a(n, t);
        prop_assert!(report.metrics.work_total <= b.work);
        prop_assert!(report.metrics.messages <= b.messages);
        prop_assert!(report.metrics.rounds <= b.rounds);
        prop_assert!(check_single_active(&report.trace).is_empty());
        prop_assert!(check_activation_order(&report.trace).is_empty());
    }

    /// Protocol B: correctness and Theorem 2.8 under random crash storms.
    #[test]
    fn protocol_b_random_storms((n, t) in ab_shape(), seed in any::<u64>(), p in 0.0f64..0.08) {
        let scenario = Scenario::Random { seed, p, max_crashes: (t - 1) as u32 };
        let report = run(
            ProtocolB::processes(n, t).unwrap(),
            scenario.adversary(),
            RunConfig::new(n as usize, u64::MAX - 1).with_trace(),
        ).unwrap();
        prop_assert!(report.metrics.all_work_done());
        let b = theorems::protocol_b(n, t);
        prop_assert!(report.metrics.work_total <= b.work);
        prop_assert!(report.metrics.messages <= b.messages);
        prop_assert!(report.metrics.rounds <= b.rounds,
            "rounds {} > bound {}", report.metrics.rounds, b.rounds);
        prop_assert!(check_single_active(&report.trace).is_empty());
        prop_assert!(check_activation_order(&report.trace).is_empty());
    }

    /// Protocol C: correctness, Theorem 3.8, and the knowledge-order
    /// invariant (checked live by a debug assertion inside the merge).
    #[test]
    fn protocol_c_random_storms((n, t) in c_shape(), seed in any::<u64>(), p in 0.0f64..0.08) {
        let scenario = Scenario::Random { seed, p, max_crashes: (t - 1) as u32 };
        let report = run(
            ProtocolC::processes(n, t).unwrap(),
            scenario.adversary(),
            RunConfig::new(n as usize, u64::MAX - 1).with_trace(),
        ).unwrap();
        prop_assert!(report.metrics.all_work_done());
        let b = theorems::protocol_c(n, t);
        prop_assert!(report.metrics.work_total <= b.work,
            "work {} > bound {}", report.metrics.work_total, b.work);
        prop_assert!(report.metrics.messages <= b.messages);
        prop_assert!(check_single_active(&report.trace).is_empty());
    }

    /// Protocol D accepts arbitrary shapes (no divisibility assumptions)
    /// and keeps Theorem 4.1's envelope under random storms.
    #[test]
    fn protocol_d_random_storms(n in 1u64..=60, t in 1u64..=12, seed in any::<u64>(), p in 0.0f64..0.08) {
        let scenario = Scenario::Random { seed, p, max_crashes: t.saturating_sub(1) as u32 };
        let report = run(
            ProtocolD::processes(n, t).unwrap(),
            scenario.adversary(),
            RunConfig::new(n as usize, u64::MAX - 1).with_trace(),
        ).unwrap();
        prop_assert!(report.metrics.all_work_done());
        let f = u64::from(report.metrics.crashes);
        let b = theorems::protocol_d_fallback(n, t, f);
        prop_assert!(report.metrics.work_total <= b.work,
            "work {} > bound {} (f = {f})", report.metrics.work_total, b.work);
        prop_assert!(report.metrics.messages <= b.messages);
    }

    /// Dead-on-arrival prefixes of any length leave a working system.
    #[test]
    fn dead_on_arrival_any_prefix((n, t) in ab_shape(), frac in 0.0f64..1.0) {
        prop_assume!(t >= 2);
        let k = ((t - 1) as f64 * frac) as u64;
        let scenario = Scenario::DeadOnArrival { k };
        let report = run(
            ProtocolB::processes(n, t).unwrap(),
            scenario.adversary(),
            RunConfig::new(n as usize, u64::MAX - 1).with_trace(),
        ).unwrap();
        prop_assert!(report.metrics.all_work_done());
        prop_assert_eq!(report.metrics.work_total, n, "dead processes did nothing; no rework");
    }

    /// Determinism as a property: equal inputs, equal outputs.
    #[test]
    fn metrics_are_deterministic((n, t) in ab_shape(), seed in any::<u64>()) {
        let mk = || run(
            ProtocolB::processes(n, t).unwrap(),
            Scenario::Random { seed, p: 0.03, max_crashes: (t - 1) as u32 }.adversary(),
            RunConfig::new(n as usize, u64::MAX - 1),
        ).unwrap().metrics;
        prop_assert_eq!(mk(), mk());
    }
}

/// Wide-clock arithmetic properties for [`Round`](doall::sim::Round),
/// concentrated on the `u64`/`u128` boundary the PR-5 clock widening
/// crossed: offsets are drawn so that sums regularly straddle `2^64`
/// (where the old clock overflowed) and the `u128` saturation horizon.
mod round_arithmetic {
    use doall::sim::Round;
    use proptest::prelude::*;

    /// A base value that lands below, at, or above `2^64`, or near the
    /// very top of the wide clock — the interesting neighbourhoods.
    fn boundary_base() -> impl Strategy<Value = u128> {
        (any::<u64>(), 0usize..4).prop_map(|(x, zone)| {
            let x = u128::from(x);
            match zone {
                0 => x,                                           // 64-bit range
                1 => (1u128 << 64).saturating_sub(x % 1_000_000), // just below 2^64
                2 => (1u128 << 64) + x,                           // just above 2^64
                _ => u128::MAX - (x % 1_000_000),                 // near the horizon
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        /// `checked_add` is exact arithmetic or `None`, and
        /// `saturating_add` agrees with it wherever it is defined —
        /// pinning at the horizon where it is not.
        #[test]
        fn checked_and_saturating_agree(base in boundary_base(), d in any::<u64>()) {
            let r = Round::new(base);
            let d = u128::from(d);
            match r.checked_add(d) {
                Some(sum) => {
                    prop_assert_eq!(sum.get(), base + d);
                    prop_assert_eq!(r.saturating_add(d), sum);
                }
                None => {
                    prop_assert!(base > u128::MAX - d, "checked_add refused a legal sum");
                    prop_assert_eq!(r.saturating_add(d), Round::MAX);
                }
            }
        }

        /// The panicking `+` operators agree with `checked_add` on every
        /// non-overflowing sum, for both `u64` and `u128` offsets.
        #[test]
        fn add_operators_match_checked(base in boundary_base(), d in any::<u64>()) {
            let r = Round::new(base);
            if base <= u128::MAX - u128::from(d) {
                prop_assert_eq!(r + d, Round::new(base + u128::from(d)));
                prop_assert_eq!(r + u128::from(d), Round::new(base + u128::from(d)));
                // Round-trip through subtraction recovers the offset.
                prop_assert_eq!((r + d) - r, u128::from(d));
            }
        }

        /// Crossing the old clock's edge is ordinary arithmetic now:
        /// `u64::MAX`-anchored rounds advance into the wide range with
        /// ordering, comparisons, and distance all consistent.
        #[test]
        fn u64_horizon_is_not_an_edge(d in 1u64..1_000_000) {
            let edge = Round::from(u64::MAX);
            let beyond = edge + d;
            prop_assert!(beyond > edge);
            prop_assert!(beyond > u64::MAX);
            prop_assert_eq!(beyond - edge, u128::from(d));
            prop_assert_eq!(beyond.get(), u128::from(u64::MAX) + u128::from(d));
            // saturating_sub floors at zero in the other direction.
            prop_assert_eq!(edge.saturating_sub(beyond), 0);
        }

        /// Mixed-width comparisons are coherent: `Round` vs `u64` and
        /// `Round` vs `u128` order exactly as the underlying values.
        #[test]
        fn mixed_width_comparisons(base in boundary_base(), x in any::<u64>()) {
            let r = Round::new(base);
            prop_assert_eq!(r == x, base == u128::from(x));
            prop_assert_eq!(r < x, base < u128::from(x));
            prop_assert_eq!(x < r, u128::from(x) < base);
            prop_assert_eq!(r == base, true);
            prop_assert_eq!(r <= base, true);
            // From<u64> is lossless and ordering-preserving.
            prop_assert_eq!(Round::from(x).get(), u128::from(x));
            prop_assert_eq!(Round::from(x) <= Round::from(u64::MAX), true);
        }

        /// The horizon is absorbing for saturating arithmetic and ordered
        /// above every other round.
        #[test]
        fn horizon_is_absorbing(base in boundary_base(), d in any::<u64>()) {
            prop_assert_eq!(Round::MAX.saturating_add(u128::from(d)), Round::MAX);
            let r = Round::new(base);
            prop_assert!(r <= Round::MAX);
            prop_assert_eq!(r.saturating_add(u128::MAX), Round::MAX);
        }
    }
}
