//! Systematic cut-point exploration: crash the initially-active process at
//! *every* possible operation index (each work unit, each sending round,
//! with full / empty / prefix delivery), and assert correctness plus the
//! structural invariants at each cut. This is the deterministic complement
//! to the random storms in `properties.rs` — every handoff edge the
//! Lemma 2.2 / 2.7 / 3.4 proofs reason about gets exercised.

use doall::bounds::theorems;
use doall::sim::invariants::{check_activation_order, check_single_active};
use doall::sim::{
    run, CrashSpec, Deliver, Pid, Round, RunConfig, Trigger, TriggerAdversary, TriggerRule,
};
use doall::{ProtocolA, ProtocolB, ProtocolC, ProtocolD};

fn cut_rule(nth_send: u64, deliver: Deliver) -> TriggerAdversary {
    TriggerAdversary::new(vec![TriggerRule {
        trigger: Trigger::NthSendRoundBy { pid: Pid::new(0), nth: nth_send },
        target: None,
        spec: CrashSpec { deliver, count_work: true },
    }])
}

fn work_cut_rule(nth: u64) -> TriggerAdversary {
    TriggerAdversary::new(vec![TriggerRule {
        trigger: Trigger::NthWorkBy { pid: Pid::new(0), nth },
        target: None,
        spec: CrashSpec { deliver: Deliver::None, count_work: true },
    }])
}

#[test]
fn protocol_a_every_send_cut_point() {
    let (n, t) = (16u64, 16u64);
    // p0's failure-free run has t + 2·√t(√t−1) = 40 sending rounds.
    for nth in 1..=40 {
        for deliver in [Deliver::All, Deliver::None, Deliver::Prefix(1), Deliver::Prefix(2)] {
            let report = run(
                ProtocolA::processes(n, t).unwrap(),
                cut_rule(nth, deliver.clone()),
                RunConfig::new(n as usize, 1_000_000).with_trace(),
            )
            .unwrap();
            assert!(report.metrics.all_work_done(), "cut {nth} {deliver:?}");
            let b = theorems::protocol_a(n, t);
            assert!(report.metrics.work_total <= b.work, "cut {nth} {deliver:?}");
            assert!(report.metrics.rounds <= b.rounds, "cut {nth} {deliver:?}");
            assert!(check_single_active(&report.trace).is_empty(), "cut {nth} {deliver:?}");
            assert!(check_activation_order(&report.trace).is_empty(), "cut {nth} {deliver:?}");
        }
    }
}

#[test]
fn protocol_a_every_work_cut_point() {
    let (n, t) = (16u64, 16u64);
    for nth in 1..=n {
        let report = run(
            ProtocolA::processes(n, t).unwrap(),
            work_cut_rule(nth),
            RunConfig::new(n as usize, 1_000_000).with_trace(),
        )
        .unwrap();
        assert!(report.metrics.all_work_done(), "work cut {nth}");
        // Exactly the unreported tail of the interrupted subchunk is redone.
        assert!(report.metrics.work_total <= n + n / t, "work cut {nth}");
        assert!(check_single_active(&report.trace).is_empty(), "work cut {nth}");
    }
}

#[test]
fn protocol_b_every_send_cut_point() {
    let (n, t) = (16u64, 16u64);
    for nth in 1..=40 {
        for deliver in [Deliver::All, Deliver::None, Deliver::Prefix(1)] {
            let report = run(
                ProtocolB::processes(n, t).unwrap(),
                cut_rule(nth, deliver.clone()),
                RunConfig::new(n as usize, 1_000_000).with_trace(),
            )
            .unwrap();
            assert!(report.metrics.all_work_done(), "cut {nth} {deliver:?}");
            let b = theorems::protocol_b(n, t);
            assert!(report.metrics.work_total <= b.work, "cut {nth} {deliver:?}");
            assert!(
                report.metrics.rounds <= b.rounds,
                "cut {nth} {deliver:?}: {} > {}",
                report.metrics.rounds,
                b.rounds
            );
            assert!(check_single_active(&report.trace).is_empty(), "cut {nth} {deliver:?}");
            assert!(check_activation_order(&report.trace).is_empty(), "cut {nth} {deliver:?}");
        }
    }
}

#[test]
fn protocol_b_two_stage_cuts() {
    // Crash p0 at cut i, then the taker p1 at cut k of its own schedule:
    // the double-handoff edges (including go_ahead polling interleavings).
    let (n, t) = (16u64, 16u64);
    for i in [1u64, 3, 5, 9] {
        for k in [1u64, 2, 4, 7] {
            let adv = TriggerAdversary::new(vec![
                TriggerRule {
                    trigger: Trigger::NthSendRoundBy { pid: Pid::new(0), nth: i },
                    target: None,
                    spec: CrashSpec { deliver: Deliver::Prefix(1), count_work: true },
                },
                TriggerRule {
                    trigger: Trigger::NthSendRoundBy { pid: Pid::new(1), nth: k },
                    target: None,
                    spec: CrashSpec { deliver: Deliver::Prefix(2), count_work: true },
                },
            ]);
            let report = run(
                ProtocolB::processes(n, t).unwrap(),
                adv,
                RunConfig::new(n as usize, 1_000_000).with_trace(),
            )
            .unwrap();
            assert!(report.metrics.all_work_done(), "cuts ({i},{k})");
            assert!(check_single_active(&report.trace).is_empty(), "cuts ({i},{k})");
            assert!(check_activation_order(&report.trace).is_empty(), "cuts ({i},{k})");
        }
    }
}

#[test]
fn protocol_c_every_send_cut_point() {
    let (n, t) = (8u64, 4u64);
    for nth in 1..=16 {
        for deliver in [Deliver::All, Deliver::None, Deliver::Prefix(1)] {
            let report = run(
                ProtocolC::processes(n, t).unwrap(),
                cut_rule(nth, deliver.clone()),
                RunConfig::new(n as usize, u64::MAX - 1).with_trace(),
            )
            .unwrap();
            assert!(report.metrics.all_work_done(), "cut {nth} {deliver:?}");
            let b = theorems::protocol_c(n, t);
            assert!(report.metrics.work_total <= b.work, "cut {nth} {deliver:?}");
            assert!(report.metrics.messages <= b.messages, "cut {nth} {deliver:?}");
            assert!(check_single_active(&report.trace).is_empty(), "cut {nth} {deliver:?}");
        }
    }
}

#[test]
fn protocol_d_every_agreement_cut_point() {
    // Crash p0 during each round of the first agreement phase with varying
    // delivery subsets — the EBA edges.
    let (n, t) = (30u64, 6u64);
    let work_rounds = n / t;
    for offset in 0..4u64 {
        for deliver in [Deliver::All, Deliver::None, Deliver::Prefix(2), Deliver::Prefix(4)] {
            let adv = TriggerAdversary::new(vec![TriggerRule {
                trigger: Trigger::AtRound(Round::from(work_rounds + 1 + offset)),
                target: Some(Pid::new(0)),
                spec: CrashSpec { deliver: deliver.clone(), count_work: true },
            }]);
            let report = run(
                ProtocolD::processes(n, t).unwrap(),
                adv,
                RunConfig::new(n as usize, 1_000_000).with_trace(),
            )
            .unwrap();
            assert!(report.metrics.all_work_done(), "offset {offset} {deliver:?}");
            assert!(
                report.metrics.work_total <= 2 * n,
                "offset {offset} {deliver:?}: work {}",
                report.metrics.work_total
            );
        }
    }
}

#[test]
fn coordinator_d_every_phase_cut_point() {
    // Crash the coordinator at each round of the first phase (work,
    // collection, decision): the broadcast fallback must always recover.
    let (n, t) = (30u64, 6u64);
    for round in 1..=(n / t + 4) {
        for deliver in [Deliver::All, Deliver::None, Deliver::Prefix(1)] {
            let adv = TriggerAdversary::new(vec![TriggerRule {
                trigger: Trigger::AtRound(Round::from(round)),
                target: Some(Pid::new(0)),
                spec: CrashSpec { deliver: deliver.clone(), count_work: true },
            }]);
            let report = run(
                ProtocolD::processes_with_coordinator(n, t).unwrap(),
                adv,
                RunConfig::new(n as usize, 1_000_000).with_trace(),
            )
            .unwrap();
            assert!(report.metrics.all_work_done(), "round {round} {deliver:?}");
            assert!(
                report.metrics.work_total <= 3 * n,
                "round {round} {deliver:?}: split-brain waste {}",
                report.metrics.work_total
            );
        }
    }
}
