//! Larger-scale smoke tests: the protocols at hundreds of processes and
//! thousands of units, where the asymptotic message terms actually
//! separate (√t vs log t vs t²).

use doall::bounds::theorems;
use doall::sim::{run, RunConfig};
use doall::workload::Scenario;
use doall::{ProtocolA, ProtocolB, ProtocolC, ProtocolD};

#[test]
fn protocol_b_at_four_hundred_processes() {
    let (n, t) = (4_000u64, 400u64); // √t = 20
    let scenario = Scenario::DeadOnArrival { k: 200 };
    let report = run(
        ProtocolB::processes(n, t).unwrap(),
        scenario.adversary(),
        RunConfig::new(n as usize, 10_000_000),
    )
    .unwrap();
    assert!(report.metrics.all_work_done());
    let b = theorems::protocol_b(n, t);
    assert!(report.metrics.work_total <= b.work);
    assert!(report.metrics.messages <= b.messages);
    assert!(report.metrics.rounds <= b.rounds);
}

#[test]
fn protocol_a_at_scale_stays_quadratic_in_rounds_only() {
    let (n, t) = (1_024u64, 256u64);
    let scenario = Scenario::TakeoverCascade { victims: 32 };
    let report = run(
        ProtocolA::processes(n, t).unwrap(),
        scenario.adversary(),
        RunConfig::new(n as usize, 10_000_000),
    )
    .unwrap();
    assert!(report.metrics.all_work_done());
    let b = theorems::protocol_a(n, t);
    assert!(report.metrics.work_total <= b.work);
    assert!(report.metrics.messages <= b.messages);
}

#[test]
fn protocol_d_at_scale_is_fast() {
    let (n, t) = (10_000u64, 100u64);
    let report = run(
        ProtocolD::processes(n, t).unwrap(),
        Scenario::FailureFree.adversary(),
        RunConfig::new(n as usize, 10_000),
    )
    .unwrap();
    assert!(report.metrics.all_work_done());
    assert_eq!(report.metrics.rounds, n / t + 2);
    assert_eq!(report.metrics.work_total, n);
}

#[test]
fn message_complexity_separation_is_visible_at_scale() {
    // The §6 comparison: B's Θ(t√t) message bound crosses above C's
    // O(n + t log t) bound as t grows. (A *measured* C run at t = 256 is
    // impossible: its takeover deadlines are exponential in n + t and
    // exceed 2^64 rounds — the paper's "at a price in terms of time".)
    for t in [64u64, 256, 1024] {
        let n = t;
        assert!(
            theorems::protocol_c(n, t).messages < theorems::protocol_b(n, t).messages,
            "separation at t = {t}"
        );
    }

    // Measured at the largest C-feasible shape: a dead-on-arrival run with
    // n + t = 48 still finishes (takeover at ~10^18 simulated rounds,
    // fast-forwarded), within the Theorem 3.8 message bound.
    let (n, t) = (16u64, 32u64);
    let c = run(
        ProtocolC::processes(n, t).unwrap(),
        Scenario::DeadOnArrival { k: 16 }.adversary(),
        RunConfig::new(n as usize, u64::MAX - 1),
    )
    .unwrap();
    assert!(c.metrics.all_work_done());
    assert!(c.metrics.messages <= theorems::protocol_c(n, t).messages);
    assert!(c.metrics.rounds > 1u128 << 50, "the exponential wait really happened");
}
