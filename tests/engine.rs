//! Engine-level integration tests: model-rule enforcement, delivery
//! semantics, fast-forward equivalence, adversary composition.

use doall::sim::{
    run, Classify, CrashSchedule, CrashSpec, Deliver, Effects, Inbox, NoFailures, Pid, Protocol,
    Round, RunConfig, Unit,
};

/// Ping-pong between two processes for a configurable number of volleys,
/// with an optional idle gap between volleys (to exercise fast-forward).
#[derive(Clone, Debug)]
struct Ball(u64);
impl Classify for Ball {
    fn class(&self) -> &'static str {
        "ball"
    }
}

struct Player {
    me: usize,
    volleys: u64,
    gap: u64,
    next_serve: Option<Round>,
    hits: u64,
}

impl Player {
    fn pair(volleys: u64, gap: u64) -> Vec<Player> {
        vec![
            Player { me: 0, volleys, gap, next_serve: Some(Round::ONE), hits: 0 },
            Player { me: 1, volleys, gap, next_serve: None, hits: 0 },
        ]
    }
}

impl Protocol for Player {
    type Msg = Ball;

    fn step(&mut self, round: Round, inbox: Inbox<'_, Ball>, eff: &mut Effects<Ball>) {
        if let Some((from, ball)) = inbox.iter().next() {
            self.hits += 1;
            if ball.0 >= self.volleys {
                eff.terminate();
                // Tell the peer to stop too.
                eff.send(from, Ball(ball.0 + 1));
                return;
            }
            // Return the ball after `gap` idle rounds.
            self.next_serve = Some(round + self.gap);
            self.hits += 0;
        }
        if self.next_serve == Some(round) {
            let n = self.hits + 1;
            let peer = Pid::new(1 - self.me);
            let count = if self.me == 0 { 2 * self.hits + 1 } else { 2 * self.hits };
            eff.send(peer, Ball(count));
            self.next_serve = None;
            if count >= self.volleys {
                eff.terminate();
            }
            let _ = n;
        }
    }

    fn next_wakeup(&self, now: Round) -> Option<Round> {
        self.next_serve.map(|r| r.max(now))
    }
}

#[test]
fn fast_forward_is_metric_equivalent_to_dense_execution() {
    // A run with huge idle gaps must produce identical message/work counts
    // and exactly the gap-scaled round count.
    let small = run(Player::pair(5, 2), NoFailures, RunConfig::new(0, 10_000)).unwrap();
    let large =
        run(Player::pair(5, 1_000_000), NoFailures, RunConfig::new(0, u64::MAX - 1)).unwrap();
    assert_eq!(small.metrics.messages, large.metrics.messages);
    assert!(large.metrics.rounds > 1_000_000u64, "gaps must count toward time");
}

/// A protocol that tries to perform two units in one round must be caught
/// by the model-rule assertion.
#[test]
#[should_panic(expected = "at most one unit of work per round")]
fn double_work_per_round_is_rejected() {
    struct Greedy;
    #[derive(Clone, Debug)]
    struct NoMsg;
    impl Classify for NoMsg {}
    impl Protocol for Greedy {
        type Msg = NoMsg;
        fn step(&mut self, _: Round, _: Inbox<'_, NoMsg>, eff: &mut Effects<NoMsg>) {
            eff.perform(Unit::new(1));
            eff.perform(Unit::new(2));
        }
        fn next_wakeup(&self, now: Round) -> Option<Round> {
            Some(now)
        }
    }
    let _ = run(vec![Greedy], NoFailures, RunConfig::new(2, 10));
}

#[test]
fn self_addressed_messages_are_delivered_next_round() {
    struct Echoist {
        sent: bool,
        got: bool,
    }
    #[derive(Clone, Debug)]
    struct Note;
    impl Classify for Note {}
    impl Protocol for Echoist {
        type Msg = Note;
        fn step(&mut self, _: Round, inbox: Inbox<'_, Note>, eff: &mut Effects<Note>) {
            if !self.sent {
                eff.send(Pid::new(0), Note);
                self.sent = true;
            } else if !inbox.is_empty() {
                self.got = true;
                eff.terminate();
            }
        }
        fn next_wakeup(&self, now: Round) -> Option<Round> {
            Some(now)
        }
    }
    let report =
        run(vec![Echoist { sent: false, got: false }], NoFailures, RunConfig::new(0, 10)).unwrap();
    assert_eq!(report.metrics.rounds, 2u64);
    assert_eq!(report.metrics.messages, 1);
}

/// A purely reactive protocol: never wakes on its own, acts only on
/// messages. Used to pin down fast-forward × adversary interactions.
struct Reactive;
#[derive(Clone, Debug)]
struct Nudge;
impl Classify for Nudge {}
impl Protocol for Reactive {
    type Msg = Nudge;
    fn step(&mut self, _: Round, _: Inbox<'_, Nudge>, _: &mut Effects<Nudge>) {}
    fn next_wakeup(&self, _: Round) -> Option<Round> {
        None
    }
}

/// Sleeps until `fire_at`, then performs one unit and terminates — the
/// minimal protocol for exercising fast-forward against round caps and
/// adversary schedules.
struct FireAt {
    fire_at: Round,
    done: bool,
}

impl FireAt {
    fn new(fire_at: impl Into<Round>) -> Self {
        FireAt { fire_at: fire_at.into(), done: false }
    }
}

impl Protocol for FireAt {
    type Msg = Nudge;
    fn step(&mut self, round: Round, _: Inbox<'_, Nudge>, eff: &mut Effects<Nudge>) {
        if round >= self.fire_at && !self.done {
            eff.perform(Unit::new(1));
            eff.terminate();
            self.done = true;
        }
    }
    fn next_wakeup(&self, now: Round) -> Option<Round> {
        if self.done {
            None
        } else {
            Some(self.fire_at.max(now))
        }
    }
}

#[test]
fn adversary_event_fires_on_a_round_where_no_process_wakes() {
    // No process ever wakes; the only future activity is the adversary's.
    // The engine must fast-forward *to the adversary's scheduled rounds*
    // (not deadlock, not execute 59 idle rounds) and let it crash both
    // processes at exactly the scheduled times.
    let adv = CrashSchedule::new().crash_at(Pid::new(0), 50, CrashSpec::silent()).crash_at(
        Pid::new(1),
        60,
        CrashSpec::silent(),
    );
    let report = run(vec![Reactive, Reactive], adv, RunConfig::new(0, 1_000)).unwrap();
    assert_eq!(report.metrics.rounds, 60u64);
    assert_eq!(report.metrics.crashes, 2);
    assert_eq!(report.statuses[0], doall::sim::Status::Crashed(Round::new(50)));
    assert_eq!(report.statuses[1], doall::sim::Status::Crashed(Round::new(60)));
    assert_eq!(report.survivor_count(), 0);
}

#[test]
fn wakeup_exactly_at_max_rounds_is_not_a_round_limit_error() {
    // A process whose only action is at round == max_rounds must still get
    // that round: the cap is inclusive.
    let report = run(vec![FireAt::new(500)], NoFailures, RunConfig::new(1, 500)).unwrap();
    assert_eq!(report.metrics.rounds, 500u64);
    assert_eq!(report.survivor_count(), 1);
    assert!(report.metrics.all_work_done());

    // One round later is out of budget.
    let err = run(vec![FireAt::new(501)], NoFailures, RunConfig::new(1, 500)).unwrap_err();
    assert!(matches!(err, doall::sim::RunError::RoundLimit { limit, .. } if limit == 500u64));
}

#[test]
fn fast_forward_resumes_after_all_but_one_process_retires() {
    // Kill everyone but a distant-deadline straggler in round 1: the engine
    // must skip ~10^6 idle rounds in O(1) once the crashes have happened,
    // and the straggler must still act at its deadline.
    let t = 8;
    let mut adv = CrashSchedule::new();
    for p in 0..t - 1 {
        adv = adv.crash_at(Pid::new(p), 1, CrashSpec::silent());
    }
    let mut procs: Vec<FireAt> = (0..t - 1).map(|_| FireAt::new(1)).collect();
    procs.push(FireAt::new(1_000_000));
    let report = run(procs, adv, RunConfig::new(1, 2_000_000)).unwrap();
    assert_eq!(report.metrics.rounds, 1_000_000u64);
    assert_eq!(report.metrics.crashes, (t - 1) as u32);
    assert_eq!(report.survivor_count(), 1);
    assert_eq!(report.survivors_iter().next(), Some(Pid::new(t - 1)));
    // Only the straggler's unit was performed: the victims died in round 1
    // before acting (silent crash), so exactly one unit total.
    assert_eq!(report.metrics.work_total, 1);
}

#[test]
fn crash_schedule_and_subset_delivery_compose() {
    // Two schedules on the same round, one clean and one subset: the
    // engine applies each victim's own spec.
    struct Spammer {
        me: usize,
        t: usize,
    }
    #[derive(Clone, Debug)]
    struct Blast;
    impl Classify for Blast {}
    impl Protocol for Spammer {
        type Msg = Blast;
        fn step(&mut self, round: Round, _: Inbox<'_, Blast>, eff: &mut Effects<Blast>) {
            let others = (0..self.t).filter(|p| *p != self.me).map(Pid::new);
            eff.broadcast(others, Blast);
            if round == 3u64 {
                eff.terminate();
            }
        }
        fn next_wakeup(&self, now: Round) -> Option<Round> {
            Some(now)
        }
    }
    let procs = (0..4).map(|me| Spammer { me, t: 4 }).collect();
    let adv = CrashSchedule::new().crash_at(Pid::new(0), 2, CrashSpec::silent()).crash_at(
        Pid::new(1),
        2,
        CrashSpec { deliver: Deliver::Subset([Pid::new(3)].into()), count_work: true },
    );
    let report = run(procs, adv, RunConfig::new(0, 10)).unwrap();
    // Round 1: 4 broadcasts × 3. Round 2: p0 suppressed (0), p1 subset (1),
    // p2 + p3 full (3 each). Round 3: p2 + p3 full.
    assert_eq!(report.metrics.messages, 12 + 7 + 6);
    assert_eq!(report.metrics.crashes, 2);
}

#[test]
fn round_limit_reports_partial_metrics() {
    // A protocol that never terminates trips the round cap with its
    // accumulated metrics intact.
    struct Forever;
    #[derive(Clone, Debug)]
    struct NoMsg;
    impl Classify for NoMsg {}
    impl Protocol for Forever {
        type Msg = NoMsg;
        fn step(&mut self, round: Round, _: Inbox<'_, NoMsg>, eff: &mut Effects<NoMsg>) {
            if round <= 3u64 {
                eff.perform(Unit::new(round.get() as usize));
            }
        }
        fn next_wakeup(&self, now: Round) -> Option<Round> {
            Some(now)
        }
    }
    match run(vec![Forever], NoFailures, RunConfig::new(3, 50)) {
        Err(doall::sim::RunError::RoundLimit { limit, metrics, .. }) => {
            assert_eq!(limit, 50u64);
            assert_eq!(metrics.work_total, 3);
        }
        other => panic!("expected RoundLimit, got {other:?}"),
    }
}

#[test]
fn terminated_processes_stop_receiving() {
    // After termination, inbound messages become dead letters.
    struct Quitter {
        me: usize,
    }
    #[derive(Clone, Debug)]
    struct Ping;
    impl Classify for Ping {}
    impl Protocol for Quitter {
        type Msg = Ping;
        fn step(&mut self, round: Round, _: Inbox<'_, Ping>, eff: &mut Effects<Ping>) {
            if self.me == 0 {
                eff.terminate();
            } else if round <= 3u64 {
                eff.send(Pid::new(0), Ping);
                if round == 3u64 {
                    eff.terminate();
                }
            }
        }
        fn next_wakeup(&self, now: Round) -> Option<Round> {
            Some(now)
        }
    }
    let report =
        run(vec![Quitter { me: 0 }, Quitter { me: 1 }], NoFailures, RunConfig::new(0, 10)).unwrap();
    assert_eq!(report.metrics.messages, 3);
    // Pings 1 and 2 arrive after p0 retired; ping 3 is still in flight
    // when the run ends (everyone has retired), so it is never delivered.
    assert_eq!(report.metrics.dead_letters, 2);
}
