//! Workspace smoke test: every protocol type re-exported from the crate
//! root constructs through its `processes(n, t)` entry point, and a tiny
//! fault-free run completes with all work done. This is the first test a
//! fresh checkout should pass — if it fails, the workspace wiring (not
//! the protocol logic) is the suspect.

use doall::sim::asynch::{run_async, AsyncConfig};
use doall::sim::{run, NoFailures, Protocol, RunConfig};
use doall::{
    AsyncProtocolA, AsyncProtocolB, AsyncReplicate, Lockstep, NaiveSpread, ProtocolA, ProtocolB,
    ProtocolC, ProtocolD, ReplicateAll,
};

/// Shape valid for every protocol family: `t = 4` is a perfect square
/// (A/B) and a power of two (C), and `t` divides `n`.
const N: u64 = 16;
const T: u64 = 4;

fn smoke<P: Protocol + Send>(name: &str, procs: Vec<P>, n: u64, t: u64)
where
    P::Msg: Send + Sync,
{
    assert_eq!(procs.len(), t as usize, "{name}: one state machine per process");
    let report = run(procs, NoFailures, RunConfig::new(n as usize, u64::MAX - 1))
        .unwrap_or_else(|e| panic!("{name}: fault-free run failed: {e}"));
    assert!(report.metrics.all_work_done(), "{name}: work left undone");
    assert!(report.has_survivor(), "{name}: no survivor in a fault-free run");
    assert_eq!(report.metrics.crashes, 0, "{name}: phantom crashes under NoFailures");
}

#[test]
fn protocol_a_constructs_and_completes() {
    smoke("ProtocolA", ProtocolA::processes(N, T).expect("valid shape"), N, T);
}

#[test]
fn protocol_b_constructs_and_completes() {
    smoke("ProtocolB", ProtocolB::processes(N, T).expect("valid shape"), N, T);
}

#[test]
fn protocol_c_constructs_and_completes() {
    smoke("ProtocolC", ProtocolC::processes(N, T).expect("valid shape"), N, T);
}

#[test]
fn protocol_c_prime_constructs_and_completes() {
    smoke("ProtocolC'", ProtocolC::processes_prime(N, T).expect("valid shape"), N, T);
}

#[test]
fn protocol_d_constructs_and_completes() {
    smoke("ProtocolD", ProtocolD::processes(N, T).expect("valid shape"), N, T);
    // D accepts arbitrary shapes, divisibility not required.
    smoke("ProtocolD(7,3)", ProtocolD::processes(7, 3).expect("valid shape"), 7, 3);
}

#[test]
fn baselines_construct_and_complete() {
    smoke("ReplicateAll", ReplicateAll::processes(N, T).expect("valid shape"), N, T);
    smoke("Lockstep", Lockstep::processes(N, T).expect("valid shape"), N, T);
    smoke("NaiveSpread", NaiveSpread::processes(N, T).expect("valid shape"), N, T);
}

#[test]
fn async_protocol_a_constructs_and_completes() {
    let procs = AsyncProtocolA::processes(N, T).expect("valid shape");
    assert_eq!(procs.len(), T as usize);
    let cfg = AsyncConfig { max_delay: 3, ..AsyncConfig::new(N as usize, 1) };
    let report = run_async(procs, NoFailures, cfg).expect("fault-free async run");
    assert!(report.metrics.all_work_done(), "AsyncProtocolA: work left undone");
    assert!(report.has_survivor());
}

#[test]
fn async_protocol_b_and_replicate_construct_and_complete() {
    for seed in [1u64, 7] {
        let cfg = AsyncConfig { max_delay: 3, ..AsyncConfig::new(N as usize, seed) };
        let report = run_async(
            AsyncProtocolB::processes(N, T).expect("valid shape"),
            NoFailures,
            cfg.clone(),
        )
        .expect("fault-free async run");
        assert!(report.metrics.all_work_done(), "AsyncProtocolB: work left undone");
        let report =
            run_async(AsyncReplicate::processes(N, T).expect("valid shape"), NoFailures, cfg)
                .expect("fault-free async run");
        assert_eq!(report.metrics.work_total, N * T, "AsyncReplicate: everyone does everything");
    }
}

#[test]
fn invalid_shapes_are_rejected_not_panicked() {
    // t = 3 is neither a perfect square (A/B) nor a power of two (C).
    assert!(ProtocolA::processes(9, 3).is_err());
    assert!(ProtocolB::processes(9, 3).is_err());
    assert!(ProtocolC::processes(9, 3).is_err());
}
